#include "prediction/frozen.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "numerics/simd.hpp"

namespace pfm::pred {

// The on-disk format is little-endian; the loader points straight into
// the mapping, so a big-endian target would need a byte-swapping load
// path that nothing requires yet.
static_assert(std::endian::native == std::endian::little,
              "frozen artifacts assume a little-endian host");

namespace {

constexpr char kMagic[8] = {'P', 'F', 'M', 'F', 'R', 'O', 'Z', 'N'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagMixtureKernels = 1u;
// Sanity bound on counts read from disk: generous for any real model,
// tight enough that every size product below stays far from overflow.
constexpr std::uint64_t kMaxCount = 1u << 20;

std::uint64_t fnv1a64(const unsigned char* data, std::size_t len) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Payload size implied by the header counts: selected (u64 x dim), the
/// per-feature and per-kernel f64 arrays, and weights (k + 1).
std::uint64_t expected_payload_bytes(std::uint64_t k, std::uint64_t dim) {
  const std::uint64_t doubles = 2 * dim + k * dim + 4 * k + (k + 1);
  return (dim + doubles) * sizeof(double);
}

void append_bytes(std::vector<unsigned char>& buf, const void* p,
                  std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  buf.insert(buf.end(), b, b + n);
}

bool write_all(int fd, const unsigned char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* to_string(FrozenError e) noexcept {
  switch (e) {
    case FrozenError::kOk: return "ok";
    case FrozenError::kIo: return "io error";
    case FrozenError::kTruncated: return "truncated artifact";
    case FrozenError::kBadMagic: return "bad magic";
    case FrozenError::kBadVersion: return "unsupported version";
    case FrozenError::kLaneMismatch: return "SIMD lane-width mismatch";
    case FrozenError::kChecksumMismatch: return "checksum mismatch";
    case FrozenError::kMalformed: return "malformed artifact";
  }
  return "unknown error";
}

FrozenError freeze(const MixtureModel& model, const std::string& path) {
  const std::uint64_t k = model.num_kernels();
  const std::uint64_t dim = model.dim();
  if (k == 0 || dim == 0 || k > kMaxCount || dim > kMaxCount ||
      model.lo.size() != dim || model.range.size() != dim ||
      model.centers.size() != k * dim || model.two_w_sq.size() != k ||
      model.step_scale.size() != k || model.mixture.size() != k ||
      model.weights.size() != k + 1 || model.name.empty()) {
    return FrozenError::kMalformed;
  }

  std::vector<unsigned char> payload;
  payload.reserve(expected_payload_bytes(k, dim));
  for (std::size_t idx : model.selected) {
    const std::uint64_t v = idx;
    append_bytes(payload, &v, sizeof(v));
  }
  append_bytes(payload, model.lo.data(), dim * sizeof(double));
  append_bytes(payload, model.range.data(), dim * sizeof(double));
  append_bytes(payload, model.centers.data(), k * dim * sizeof(double));
  append_bytes(payload, model.w.data(), k * sizeof(double));
  append_bytes(payload, model.two_w_sq.data(), k * sizeof(double));
  append_bytes(payload, model.step_scale.data(), k * sizeof(double));
  append_bytes(payload, model.mixture.data(), k * sizeof(double));
  append_bytes(payload, model.weights.data(), (k + 1) * sizeof(double));

  FrozenHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.flags = model.mixture_kernels ? kFlagMixtureKernels : 0u;
  h.lane_width = static_cast<std::uint32_t>(num::simd::kLanes);
  h.name_len = static_cast<std::uint32_t>(
      std::min<std::size_t>(model.name.size(), sizeof(h.name)));
  std::memcpy(h.name, model.name.data(), h.name_len);
  h.num_kernels = k;
  h.dim = dim;
  h.num_raw_vars = model.num_raw_vars;
  h.data_window = model.windows.data_window;
  h.lead_time = model.windows.lead_time;
  h.prediction_window = model.windows.prediction_window;
  h.payload_bytes = payload.size();
  h.checksum = fnv1a64(payload.data(), payload.size());

  // Atomic publish: write header + payload to a sibling temp file, fsync,
  // rename into place. A crashed freeze never leaves a torn artifact.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return FrozenError::kIo;
  bool ok = write_all(fd, reinterpret_cast<const unsigned char*>(&h),
                      sizeof(h)) &&
            write_all(fd, payload.data(), payload.size()) &&
            ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return FrozenError::kIo;
  }
  return FrozenError::kOk;
}

FrozenPredictor::LoadResult FrozenPredictor::load(const std::string& path) {
  LoadResult result;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    result.error = FrozenError::kIo;
    return result;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    result.error = FrozenError::kIo;
    return result;
  }
  const auto file_len = static_cast<std::size_t>(st.st_size);
  if (file_len < sizeof(FrozenHeader)) {
    ::close(fd);
    result.error = FrozenError::kTruncated;
    return result;
  }
  void* map = ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    result.error = FrozenError::kIo;
    return result;
  }

  // From here on, every early exit must unmap.
  auto fail = [&](FrozenError e) {
    ::munmap(map, file_len);
    result.error = e;
    return std::move(result);
  };

  FrozenHeader h{};
  std::memcpy(&h, map, sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return fail(FrozenError::kBadMagic);
  }
  if (h.version != kVersion) return fail(FrozenError::kBadVersion);
  if (h.lane_width != num::simd::kLanes) {
    return fail(FrozenError::kLaneMismatch);
  }
  if (h.name_len == 0 || h.name_len > sizeof(h.name) || h.num_kernels == 0 ||
      h.dim == 0 || h.num_kernels > kMaxCount || h.dim > kMaxCount ||
      h.num_raw_vars > kMaxCount) {
    return fail(FrozenError::kMalformed);
  }
  if (h.payload_bytes != expected_payload_bytes(h.num_kernels, h.dim)) {
    return fail(FrozenError::kMalformed);
  }
  if (file_len < sizeof(FrozenHeader) + h.payload_bytes) {
    return fail(FrozenError::kTruncated);
  }
  const auto* payload =
      static_cast<const unsigned char*>(map) + sizeof(FrozenHeader);
  if (fnv1a64(payload, static_cast<std::size_t>(h.payload_bytes)) !=
      h.checksum) {
    return fail(FrozenError::kChecksumMismatch);
  }

  const auto k = static_cast<std::size_t>(h.num_kernels);
  const auto dim = static_cast<std::size_t>(h.dim);

  // selected: u64 on disk, size_t in the view — copy for portability and
  // reject indices a feature gather could never satisfy. Validated before
  // the predictor takes ownership of the mapping, so fail() stays the
  // only unmapper on every error path.
  std::vector<std::size_t> selected(dim);
  const unsigned char* cursor = payload;
  for (std::size_t i = 0; i < dim; ++i) {
    std::uint64_t v = 0;
    std::memcpy(&v, cursor + i * sizeof(v), sizeof(v));
    if (v >= 2 * kMaxCount) return fail(FrozenError::kMalformed);
    selected[i] = static_cast<std::size_t>(v);
  }
  cursor += dim * sizeof(std::uint64_t);

  auto p = std::unique_ptr<FrozenPredictor>(new FrozenPredictor());
  p->header_ = h;
  p->map_ = map;
  p->map_len_ = file_len;
  p->selected_ = std::move(selected);

  // The double arrays are served straight from the mapping (the payload
  // starts 104 bytes in — 8-byte aligned off the page-aligned base).
  auto take = [&](std::size_t n) {
    const auto* d = reinterpret_cast<const double*>(cursor);
    cursor += n * sizeof(double);
    return d;
  };
  MixtureModelView v;
  v.selected = p->selected_.data();
  v.dim = dim;
  v.num_raw_vars = static_cast<std::size_t>(h.num_raw_vars);
  v.lo = take(dim);
  v.range = take(dim);
  v.centers = take(k * dim);
  v.w = take(k);
  v.two_w_sq = take(k);
  v.step_scale = take(k);
  v.mixture = take(k);
  v.weights = take(k + 1);
  v.num_kernels = k;
  v.mixture_kernels = (h.flags & kFlagMixtureKernels) != 0;
  v.data_window = h.data_window;
  p->view_ = v;

  result.predictor = std::move(p);
  return result;
}

FrozenPredictor::~FrozenPredictor() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

std::string FrozenPredictor::name() const {
  return std::string(header_.name, header_.name_len);
}

void FrozenPredictor::train(const mon::MonitoringDataset&) {
  throw std::logic_error("FrozenPredictor: serve-only (train at freeze time)");
}

WindowGeometry FrozenPredictor::windows() const noexcept {
  WindowGeometry g;
  g.data_window = header_.data_window;
  g.lead_time = header_.lead_time;
  g.prediction_window = header_.prediction_window;
  return g;
}

double FrozenPredictor::score(const SymptomContext& context) const {
  return score_one(view_, context);
}

namespace {

// pfm-cold
[[noreturn]] void throw_frozen_batch_size_mismatch() {
  throw std::invalid_argument("score_batch: contexts/out size mismatch");
}

}  // namespace

void FrozenPredictor::score_batch(std::span<const SymptomContext> contexts,
                                  std::span<double> out) const {
  if (contexts.size() != out.size()) throw_frozen_batch_size_mismatch();
  BatchScratch scratch;
  score_batch_soa(view_, contexts, out, scratch);
}

// pfm-hot
void FrozenPredictor::score_batch(std::span<const SymptomContext> contexts,
                                  std::span<double> out,
                                  BatchScratch& scratch) const {
  if (contexts.size() != out.size()) throw_frozen_batch_size_mismatch();
  score_batch_soa(view_, contexts, out, scratch);
}

}  // namespace pfm::pred
