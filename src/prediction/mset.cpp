#include "prediction/mset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/kmeans.hpp"
#include "numerics/logistic.hpp"
#include "numerics/rng.hpp"
#include "numerics/stats.hpp"

namespace pfm::pred {

MsetPredictor::MsetPredictor(MsetConfig config) : config_(std::move(config)) {
  config_.windows.validate();
  if (config_.memory_size < 2) {
    throw std::invalid_argument("MsetPredictor: memory_size >= 2");
  }
  if (config_.bandwidth <= 0.0) {
    throw std::invalid_argument("MsetPredictor: bandwidth > 0");
  }
}

std::vector<double> MsetPredictor::scale(std::span<const double> raw) const {
  std::vector<double> out(raw.size());
  for (std::size_t j = 0; j < raw.size(); ++j) {
    const double range = hi_[j] - lo_[j];
    out[j] = range > 0.0
                 ? std::clamp((raw[j] - lo_[j]) / range, -0.5, 1.5)
                 : 0.5;
  }
  return out;
}

double MsetPredictor::kernel(std::span<const double> a,
                             std::span<const double> b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  const double h2 = config_.bandwidth * config_.bandwidth;
  return std::exp(-d2 / (2.0 * h2));
}

void MsetPredictor::train(const mon::MonitoringDataset& data) {
  const auto windows = data.labeled_windows(config_.windows.lead_time,
                                            config_.windows.prediction_window);
  // MSET trains on *healthy* states only.
  std::vector<std::size_t> healthy;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (!windows[i].failure_follows) healthy.push_back(i);
  }
  if (healthy.size() < config_.memory_size * 2) {
    throw std::invalid_argument(
        "MsetPredictor::train: not enough healthy observations");
  }
  const std::size_t dim = data.schema().size();
  num::Rng rng(config_.seed);
  if (healthy.size() > config_.max_train_samples) {
    const auto perm = rng.permutation(healthy.size());
    std::vector<std::size_t> keep(config_.max_train_samples);
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = healthy[perm[i]];
    healthy = std::move(keep);
  }

  // Feature scaling from the healthy pool.
  lo_.assign(dim, 1e300);
  hi_.assign(dim, -1e300);
  for (std::size_t i : healthy) {
    for (std::size_t j = 0; j < dim; ++j) {
      lo_[j] = std::min(lo_[j], windows[i].features[j]);
      hi_[j] = std::max(hi_[j], windows[i].features[j]);
    }
  }

  // Exemplar selection: k-means centers over the scaled healthy states.
  std::vector<double> flat;
  flat.reserve(healthy.size() * dim);
  for (std::size_t i : healthy) {
    const auto s = scale(windows[i].features);
    flat.insert(flat.end(), s.begin(), s.end());
  }
  const auto km = num::kmeans(flat, dim, config_.memory_size, rng, 40);
  memory_.clear();
  memory_.reserve(config_.memory_size);
  for (std::size_t i = 0; i < config_.memory_size; ++i) {
    memory_.emplace_back(km.center(i).begin(), km.center(i).end());
  }

  // Gram matrix of the memory under the similarity operator.
  const std::size_t m = memory_.size();
  num::Matrix g(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      g(i, j) = kernel(memory_[i], memory_[j]);
    }
    g(i, i) += config_.ridge;
  }
  gram_ = std::make_unique<num::LuDecomposition>(std::move(g));
  trained_ = true;

  // Residual calibration on the healthy pool (it was used for exemplar
  // selection, so this is slightly optimistic — acceptable for a score
  // that is thresholded downstream).
  num::RunningStats rs;
  for (std::size_t i : healthy) {
    rs.add(residual(windows[i].features));
  }
  residual_mean_ = rs.mean();
  residual_stddev_ = std::max(rs.stddev(), 1e-9);
}

double MsetPredictor::residual(std::span<const double> observation) const {
  if (!trained_) throw std::logic_error("MsetPredictor: not trained");
  const auto x = scale(observation);
  const std::size_t m = memory_.size();
  std::vector<double> s(m);
  for (std::size_t i = 0; i < m; ++i) s[i] = kernel(memory_[i], x);
  const auto w = gram_->solve(s);
  // xhat = sum_i w_i * memory_i.
  std::vector<double> xhat(x.size(), 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < x.size(); ++j) {
      xhat[j] += w[i] * memory_[i][j];
    }
  }
  double r2 = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double d = x[j] - xhat[j];
    r2 += d * d;
  }
  return std::sqrt(r2);
}

double MsetPredictor::score(const SymptomContext& context) const {
  if (!trained_) throw std::logic_error("MsetPredictor: not trained");
  if (context.history.empty()) {
    throw std::invalid_argument("MsetPredictor: empty context");
  }
  const double r = residual(context.history.back().values);
  const double z = (r - residual_mean_) / residual_stddev_;
  return num::sigmoid(0.8 * (z - 2.0));  // ~2 sigma is the soft alarm point
}

}  // namespace pfm::pred
