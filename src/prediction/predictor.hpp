#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "monitoring/dataset.hpp"
#include "monitoring/types.hpp"

namespace pfm::pred {

/// Everything a symptom-based predictor may look at when judging the
/// current system state: a trailing window of symptom samples (back() is
/// the present) and the failure history up to now. Predictors use what
/// they need — UBF reads the newest sample, trend analysis regresses over
/// the window, failure tracking only needs the failure history and the
/// current time.
struct SymptomContext {
  std::span<const mon::SymptomSample> history;
  std::span<const double> past_failures;

  /// Identity of this evaluation, stamped by the controller that built
  /// the context: `origin` is the global node index (0 for single-system
  /// controllers) and `ordinal` that node's evaluation count. Predictors
  /// ignore both; fault-injection wrappers key their per-item decision
  /// streams on (origin, ordinal), so injected rolls stay bit-exact no
  /// matter how the fleet is sharded or batched.
  std::uint64_t origin = 0;
  std::uint64_t ordinal = 0;

  double now() const { return history.empty() ? 0.0 : history.back().time; }
};

/// Compute kernel the arena-backed score_batch overloads sweep with.
/// kScalar is the libm reference sweep (bit-identical to the 2-argument
/// overloads); kSimd routes the arithmetic through num::simd over the
/// same SoA columns — scores agree within the documented ULP bound (see
/// DESIGN.md §13), threshold decisions are pinned identical on the
/// conformance corpus. The fleet runtime sets this from FleetPath.
enum class BatchKernel : std::uint8_t {
  kScalar = 0,
  kSimd = 1,
};

/// Caller-owned scratch arena for batched scoring. The fleet runtime keeps
/// one per predictor and threads it through every round, so the hot path
/// allocates nothing once the buffers reached steady-state size — the
/// stress suite asserts capacity_bytes() stabilizes after warm-up.
///
/// `features` is used as a structure-of-arrays matrix (column f of a
/// batch of size n occupies [f * n, (f + 1) * n)): gathering each feature
/// contiguously across the batch lets a predictor sweep one kernel or one
/// projection over all contexts with unit stride. The remaining buffers
/// are generic per-context workspaces (regression inputs, activation
/// rows, event-id sets).
struct BatchScratch {
  std::vector<double> features;     ///< SoA feature columns
  std::vector<double> activations;  ///< one kernel/projection row
  std::vector<double> t_buf;        ///< regression abscissae
  std::vector<double> v_buf;        ///< regression ordinates
  std::vector<std::int32_t> ids;    ///< event-id workspace

  /// Sweep selection for SoA-aware predictors (see BatchKernel).
  BatchKernel kernel = BatchKernel::kScalar;

  /// resize() that only ever grows capacity — the arena's footprint is
  /// monotone, which makes "no reallocation after warm-up" observable.
  template <typename T>
  static void resize(std::vector<T>& buf, std::size_t n) {
    if (n > buf.capacity()) buf.reserve(n);
    buf.resize(n);
  }

  /// Total reserved footprint; stable after warm-up on the hot path.
  std::size_t capacity_bytes() const noexcept {
    return (features.capacity() + activations.capacity() +
            t_buf.capacity() + v_buf.capacity()) * sizeof(double) +
           ids.capacity() * sizeof(std::int32_t);
  }
};

/// Online failure predictor over periodically monitored symptom variables
/// (the left branch of the Fig. 3 taxonomy).
///
/// Contract: train() may be called once on a training trace; score()
/// returns a real number that increases with failure-proneness. Scores are
/// thresholded by the caller (Sect. 3.3: the precision/recall trade-off is
/// controlled by a threshold), so absolute calibration is not required —
/// only ordering matters.
///
/// Fault model: callers do not trust scores blindly. The MEA/fleet
/// controllers exclude non-finite scores from the warning reduce (counted
/// as sanitized), and the fleet runtime trips a predictor that throws or
/// emits non-finite scores repeatedly out of the ensemble via a circuit
/// breaker. A predictor should still strive to return finite values —
/// degraded mode costs prediction coverage.
class SymptomPredictor {
 public:
  virtual ~SymptomPredictor() = default;

  virtual std::string name() const = 0;

  /// Learns from a recorded trace. Throws std::invalid_argument when the
  /// trace is unusable for this method (e.g., no failures at all).
  virtual void train(const mon::MonitoringDataset& data) = 0;

  /// Failure-proneness of the current state; higher = more failure-prone.
  /// Throws std::logic_error when called before train().
  virtual double score(const SymptomContext& context) const = 0;

  /// Scores many contexts in one call — the fleet runtime's hot path
  /// (one virtual call per predictor instead of one per node×layer).
  /// `out[i]` receives score(contexts[i]); the default loops, overrides
  /// vectorize by hoisting per-call setup and reusing scratch buffers.
  /// Must be safe to call concurrently on disjoint spans.
  /// Throws std::invalid_argument when the span sizes differ.
  virtual void score_batch(std::span<const SymptomContext> contexts,
                           std::span<double> out) const;

  /// Arena-backed batched scoring: identical results to the two-argument
  /// overload (the conformance suite pins both to the same bits), but all
  /// per-call buffers live in `scratch` and are reused across rounds. The
  /// default discards the arena and forwards; SoA-aware predictors
  /// override. Concurrent calls must use disjoint arenas.
  virtual void score_batch(std::span<const SymptomContext> contexts,
                           std::span<double> out, BatchScratch& scratch) const;
};

/// Online failure predictor over detected-error event sequences (the
/// "detected error reporting" branch of Fig. 3; input per Fig. 4).
class EventPredictor {
 public:
  virtual ~EventPredictor() = default;

  virtual std::string name() const = 0;

  /// Learns from labeled failure/non-failure sequences (Fig. 6).
  /// Throws std::invalid_argument when either class is empty.
  virtual void train(std::span<const mon::ErrorSequence> failure_sequences,
                     std::span<const mon::ErrorSequence> nonfailure_sequences) = 0;

  /// Failure-proneness of the error sequence observed in the current data
  /// window; higher = more failure-prone.
  virtual double score(const mon::ErrorSequence& sequence) const = 0;

  /// Batched counterpart of score(); same contract as
  /// SymptomPredictor::score_batch.
  virtual void score_batch(std::span<const mon::ErrorSequence> sequences,
                           std::span<double> out) const;

  /// Arena-backed batched scoring; same contract as the SymptomPredictor
  /// overload (bit-identical to the two-argument path, disjoint arenas
  /// for concurrent calls). The default forwards.
  virtual void score_batch(std::span<const mon::ErrorSequence> sequences,
                           std::span<double> out, BatchScratch& scratch) const;
};

/// Shared window geometry (Fig. 6): data window Delta t_d, lead time
/// Delta t_l, prediction period Delta t_p.
struct WindowGeometry {
  double data_window = 600.0;
  double lead_time = 300.0;
  double prediction_window = 300.0;

  void validate() const;
};

}  // namespace pfm::pred
