#include "prediction/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/logistic.hpp"
#include "numerics/matrix.hpp"
#include "numerics/simd.hpp"
#include "numerics/stats.hpp"

namespace pfm::pred {

MixtureModelView MixtureModel::view() const noexcept {
  MixtureModelView v;
  v.selected = selected.data();
  v.dim = selected.size();
  v.num_raw_vars = num_raw_vars;
  v.lo = lo.data();
  v.range = range.data();
  v.centers = centers.data();
  v.w = w.data();
  v.two_w_sq = two_w_sq.data();
  v.step_scale = step_scale.data();
  v.mixture = mixture.data();
  v.weights = weights.data();
  v.num_kernels = w.size();
  v.mixture_kernels = mixture_kernels;
  v.data_window = windows.data_window;
  return v;
}

namespace {

// The gather loop sits inside every arena-backed scorer's hot closure
// (pfm-analyze hotpath); the throw stays out-of-line. The message matches
// UbfPredictor's reference paths so conformance errors stay byte-identical
// (frozen artifacts are frozen UBF/RBF models, so they share it).
// pfm-cold
[[noreturn]] void throw_gather_empty_context() {
  throw std::invalid_argument("UbfPredictor: empty context");
}

}  // namespace

// pfm-hot
void gather_features(const MixtureModelView& m,
                     std::span<const SymptomContext> contexts,
                     BatchScratch& scratch) {
  const std::size_t batch = contexts.size();
  const std::size_t dim = m.dim;
  BatchScratch::resize(scratch.features, dim * batch);
  for (std::size_t c = 0; c < batch; ++c) {
    const auto& ctx = contexts[c];
    if (ctx.history.empty()) {
      throw_gather_empty_context();
    }
    const auto& current = ctx.history.back();
    const double t0 = current.time - m.data_window;
    for (std::size_t i = 0; i < dim; ++i) {
      const std::size_t idx = m.selected[i];
      double v;
      if (idx < m.num_raw_vars) {
        v = current.values[idx];
      } else {
        const std::size_t j = idx - m.num_raw_vars;
        scratch.t_buf.clear();
        scratch.v_buf.clear();
        for (const auto& s : ctx.history) {
          if (s.time <= t0) continue;
          scratch.t_buf.push_back(s.time);
          scratch.v_buf.push_back(s.values[j]);
        }
        v = scratch.t_buf.size() >= 2
                ? num::fit_line(scratch.t_buf, scratch.v_buf).slope
                : 0.0;
      }
      const double range = m.range[i];
      const double scaled = range > 0.0 ? (v - m.lo[i]) / range : 0.5;
      scratch.features[i * batch + c] = std::clamp(scaled, -0.5, 1.5);
    }
  }
}

// pfm-hot
void sweep_scalar(const MixtureModelView& m, std::size_t batch,
                  BatchScratch& scratch, std::span<double> out) noexcept {
  // Evaluate each Eq. 1 kernel over every context, then fold its
  // activation row into the accumulator with one axpy. Per context this
  // performs bias-first, kernels-in-order accumulation with the same
  // statement shapes as the reference score() path, so the result is
  // bit-identical to it.
  BatchScratch::resize(scratch.activations, batch);
  for (std::size_t c = 0; c < batch; ++c) out[c] = m.weights[m.num_kernels];
  const std::size_t dim = m.dim;
  for (std::size_t i = 0; i < m.num_kernels; ++i) {
    const double* center = m.centers + i * dim;
    const double w = m.w[i];
    const double two_w_sq = m.two_w_sq[i];
    const double step_scale = m.step_scale[i];
    const double mixture = m.mixture[i];
    for (std::size_t c = 0; c < batch; ++c) {
      double s = 0.0;
      for (std::size_t j = 0; j < dim; ++j) {
        const double d = scratch.features[j * batch + c] - center[j];
        s += d * d;
      }
      const double d = std::sqrt(s);
      const double gaussian = std::exp(-d * d / two_w_sq);
      if (!m.mixture_kernels) {
        scratch.activations[c] = gaussian;
      } else {
        const double step = 1.0 / (1.0 + std::exp((d - w) / step_scale));
        scratch.activations[c] = mixture * gaussian + (1.0 - mixture) * step;
      }
    }
    num::axpy(m.weights[i], scratch.activations, out);
  }
  for (std::size_t c = 0; c < batch; ++c) {
    out[c] = num::sigmoid(4.0 * (out[c] - 0.5));
  }
}

// pfm-hot
void sweep_simd(const MixtureModelView& m, std::size_t batch,
                BatchScratch& scratch, std::span<double> out) noexcept {
  // Same structure as sweep_scalar — bias first, kernels in order, one
  // activation row per kernel — with the per-row arithmetic handed to
  // num::simd. The distance accumulation keeps the scalar j-order per
  // context (bit-identical d^2); only the transcendental steps pick up
  // the vexp-vs-libm ULP difference.
  BatchScratch::resize(scratch.activations, batch);
  for (std::size_t c = 0; c < batch; ++c) out[c] = m.weights[m.num_kernels];
  const std::size_t dim = m.dim;
  double* act = scratch.activations.data();
  for (std::size_t i = 0; i < m.num_kernels; ++i) {
    num::simd::squared_distance_soa(scratch.features.data(), batch, dim,
                                    m.centers + i * dim, act);
    num::simd::mixture_activation(act, batch, m.w[i], m.two_w_sq[i],
                                  m.step_scale[i], m.mixture[i],
                                  m.mixture_kernels, act);
    num::simd::axpy(m.weights[i], act, out.data(), batch);
  }
  num::simd::score_sigmoid(out.data(), batch);
}

// pfm-hot
void score_batch_soa(const MixtureModelView& m,
                     std::span<const SymptomContext> contexts,
                     std::span<double> out, BatchScratch& scratch) {
  const std::size_t batch = contexts.size();
  if (batch == 0) return;
  gather_features(m, contexts, scratch);
  if (scratch.kernel == BatchKernel::kSimd) {
    sweep_simd(m, batch, scratch, out);
  } else {
    sweep_scalar(m, batch, scratch, out);
  }
}

double score_one(const MixtureModelView& m, const SymptomContext& ctx) {
  BatchScratch scratch;
  double out = 0.0;
  gather_features(m, {&ctx, 1}, scratch);
  sweep_scalar(m, 1, scratch, {&out, 1});
  return out;
}

}  // namespace pfm::pred
