#include "prediction/predictor.hpp"

#include <stdexcept>

namespace pfm::pred {

void SymptomPredictor::score_batch(std::span<const SymptomContext> contexts,
                                   std::span<double> out) const {
  if (contexts.size() != out.size()) {
    throw std::invalid_argument("score_batch: contexts/out size mismatch");
  }
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    out[i] = score(contexts[i]);
  }
}

void SymptomPredictor::score_batch(std::span<const SymptomContext> contexts,
                                   std::span<double> out,
                                   BatchScratch& scratch) const {
  (void)scratch;  // predictors with no per-call buffers need no arena
  score_batch(contexts, out);
}

void EventPredictor::score_batch(std::span<const mon::ErrorSequence> sequences,
                                 std::span<double> out) const {
  if (sequences.size() != out.size()) {
    throw std::invalid_argument("score_batch: sequences/out size mismatch");
  }
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    out[i] = score(sequences[i]);
  }
}

void EventPredictor::score_batch(std::span<const mon::ErrorSequence> sequences,
                                 std::span<double> out,
                                 BatchScratch& scratch) const {
  (void)scratch;
  score_batch(sequences, out);
}

void WindowGeometry::validate() const {
  if (data_window <= 0.0) {
    throw std::invalid_argument("WindowGeometry: data_window must be > 0");
  }
  if (lead_time < 0.0) {
    throw std::invalid_argument("WindowGeometry: lead_time must be >= 0");
  }
  if (prediction_window <= 0.0) {
    throw std::invalid_argument(
        "WindowGeometry: prediction_window must be > 0");
  }
}

}  // namespace pfm::pred
