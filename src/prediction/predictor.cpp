#include "prediction/predictor.hpp"

#include <stdexcept>

namespace pfm::pred {

void WindowGeometry::validate() const {
  if (data_window <= 0.0) {
    throw std::invalid_argument("WindowGeometry: data_window must be > 0");
  }
  if (lead_time < 0.0) {
    throw std::invalid_argument("WindowGeometry: lead_time must be >= 0");
  }
  if (prediction_window <= 0.0) {
    throw std::invalid_argument(
        "WindowGeometry: prediction_window must be > 0");
  }
}

}  // namespace pfm::pred
