#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "prediction/kernels.hpp"
#include "prediction/predictor.hpp"

namespace pfm::pred {

/// Why loading a frozen-predictor artifact failed. Every malformed input
/// maps onto one of these — a corrupt file is a typed, recoverable error,
/// never undefined behavior (the corruption suite runs under ASan/UBSan).
enum class FrozenError : std::uint8_t {
  kOk = 0,
  kIo,                 ///< open/stat/mmap failed
  kTruncated,          ///< file shorter than header + declared payload
  kBadMagic,           ///< not a PFMFROZN artifact
  kBadVersion,         ///< artifact format newer/older than this build
  kLaneMismatch,       ///< baked for a different SIMD lane width
  kChecksumMismatch,   ///< payload bytes fail the FNV-1a check
  kMalformed,          ///< internally inconsistent counts/sizes
};

const char* to_string(FrozenError e) noexcept;

/// On-disk header of a frozen predictor (version 1). Fixed 104-byte
/// little-endian layout, followed immediately by `payload_bytes` of
/// packed f64/u64 arrays (see DESIGN.md §13 for the field table):
///   selected[dim] (u64), lo[dim], range[dim], centers[num_kernels*dim],
///   w[k], two_w_sq[k], step_scale[k], mixture[k], weights[k+1].
struct FrozenHeader {
  char magic[8];                ///< "PFMFROZN"
  std::uint32_t version;        ///< format version, currently 1
  std::uint32_t flags;          ///< bit 0: mixture_kernels
  std::uint32_t lane_width;     ///< num::simd::kLanes at freeze time
  std::uint32_t name_len;       ///< valid bytes in name[]
  char name[16];                ///< predictor name, unpadded ("UBF"/"RBF")
  std::uint64_t num_kernels;
  std::uint64_t dim;
  std::uint64_t num_raw_vars;
  double data_window;
  double lead_time;
  double prediction_window;
  std::uint64_t payload_bytes;  ///< bytes following the header
  std::uint64_t checksum;       ///< FNV-1a-64 over the payload bytes
};
static_assert(sizeof(FrozenHeader) == 104, "frozen header layout is pinned");

/// Serializes a trained mixture model into a frozen artifact at `path`
/// (atomic: written to a temp file, fsync'd, renamed into place).
/// Returns kOk or kIo/kMalformed.
FrozenError freeze(const MixtureModel& model, const std::string& path);

/// Serve-only predictor backed by an mmap'd frozen artifact. All f64
/// model arrays point directly into the mapping — loading allocates only
/// the (tiny) header materialization plus the portable index vector, and
/// scoring through the arena-backed overload allocates nothing at all.
///
/// Scores are bit-identical to the live UbfPredictor the artifact was
/// frozen from: both run the kernels.hpp engine over the same constants.
class FrozenPredictor final : public SymptomPredictor {
 public:
  struct LoadResult {
    std::unique_ptr<FrozenPredictor> predictor;  ///< null on error
    FrozenError error = FrozenError::kOk;
  };

  /// Maps and validates an artifact. Never throws on bad input — every
  /// corruption mode returns a typed error instead.
  static LoadResult load(const std::string& path);

  ~FrozenPredictor() override;
  FrozenPredictor(const FrozenPredictor&) = delete;
  FrozenPredictor& operator=(const FrozenPredictor&) = delete;

  std::string name() const override;

  /// Frozen predictors are serve-only; training throws std::logic_error.
  void train(const mon::MonitoringDataset& data) override;

  double score(const SymptomContext& context) const override;
  void score_batch(std::span<const SymptomContext> contexts,
                   std::span<double> out) const override;
  void score_batch(std::span<const SymptomContext> contexts,
                   std::span<double> out,
                   BatchScratch& scratch) const override;

  /// Window geometry baked into the artifact.
  WindowGeometry windows() const noexcept;

  /// The validated header, for tooling and tests.
  const FrozenHeader& header() const noexcept { return header_; }

 private:
  FrozenPredictor() = default;

  FrozenHeader header_{};
  void* map_ = nullptr;        ///< mmap base (whole file)
  std::size_t map_len_ = 0;
  /// Feature indices copied out of the map: the payload stores them as
  /// u64 but size_t may be narrower, so the portable copy keeps the view
  /// valid on every target. All double arrays point into the map.
  std::vector<std::size_t> selected_;
  MixtureModelView view_{};
};

}  // namespace pfm::pred
