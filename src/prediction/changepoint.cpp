#include "prediction/changepoint.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfm::pred {

Cusum::Cusum(double reference, double drift, double threshold)
    : reference_(reference), drift_(drift), threshold_(threshold) {
  if (drift < 0.0 || threshold <= 0.0) {
    throw std::invalid_argument("Cusum: drift >= 0 and threshold > 0");
  }
}

bool Cusum::add(double x) {
  s_pos_ = std::max(0.0, s_pos_ + (x - reference_ - drift_));
  s_neg_ = std::max(0.0, s_neg_ + (reference_ - x - drift_));
  if (s_pos_ > threshold_ || s_neg_ > threshold_) {
    ++alarms_;
    s_pos_ = 0.0;
    s_neg_ = 0.0;
    return true;
  }
  return false;
}

void Cusum::rebase(double reference) {
  reference_ = reference;
  s_pos_ = 0.0;
  s_neg_ = 0.0;
}

PageHinkley::PageHinkley(double delta, double threshold)
    : delta_(delta), threshold_(threshold) {
  if (delta < 0.0 || threshold <= 0.0) {
    throw std::invalid_argument("PageHinkley: delta >= 0 and threshold > 0");
  }
}

void PageHinkley::reset() {
  mean_ = 0.0;
  cumulative_ = 0.0;
  min_cumulative_ = 0.0;
  n_ = 0;
}

bool PageHinkley::add(double x) {
  ++n_;
  mean_ += (x - mean_) / static_cast<double>(n_);
  cumulative_ += x - mean_ - delta_;
  min_cumulative_ = std::min(min_cumulative_, cumulative_);
  if (cumulative_ - min_cumulative_ > threshold_) {
    ++alarms_;
    reset();
    return true;
  }
  return false;
}

}  // namespace pfm::pred
