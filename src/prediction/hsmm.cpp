#include "prediction/hsmm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/logistic.hpp"

namespace pfm::pred {

namespace {

constexpr double kDensityFloor = 1e-300;

}  // namespace

Hsmm::Hsmm(Config config) : config_(std::move(config)) {
  if (config_.num_states == 0 || config_.num_symbols == 0) {
    throw std::invalid_argument("Hsmm: states and symbols must be > 0");
  }
}

double Hsmm::observation_density(std::size_t state,
                                 const HsmmObservation& o) const {
  double d = emission_(state, o.symbol);
  if (o.gap > 0.0) {
    const double rate = gap_rate_[state];
    d *= rate * std::exp(-rate * o.gap);
  }
  return std::max(d, kDensityFloor);
}

void Hsmm::train(const std::vector<HsmmSequence>& sequences) {
  std::vector<const HsmmSequence*> usable;
  for (const auto& s : sequences) {
    if (!s.empty()) usable.push_back(&s);
  }
  if (usable.empty()) {
    throw std::invalid_argument("Hsmm::train: no non-empty sequences");
  }
  for (const auto* s : usable) {
    for (const auto& o : *s) {
      if (o.symbol >= config_.num_symbols) {
        throw std::invalid_argument("Hsmm::train: symbol out of range");
      }
      if (o.gap < 0.0) {
        throw std::invalid_argument("Hsmm::train: negative gap");
      }
    }
  }

  const std::size_t ns = config_.num_states;
  const std::size_t nv = config_.num_symbols;

  // EM is sensitive to its random initialization; run a few restarts and
  // keep the parameters with the best training likelihood.
  struct Params {
    std::vector<double> initial;
    num::Matrix transition;
    num::Matrix emission;
    std::vector<double> gap_rate;
  };
  Params best;
  double best_ll = -1e300;
  constexpr int kRestarts = 3;
  for (int restart = 0; restart < kRestarts; ++restart) {
    num::Rng rng(config_.seed + 7919ULL * static_cast<std::uint64_t>(restart));

    // Random-perturbed uniform initialization.
  auto normalize = [](std::span<double> v) {
    double s = 0.0;
    for (double x : v) s += x;
    for (double& x : v) x /= s;
  };
  initial_.assign(ns, 0.0);
  for (double& p : initial_) p = 1.0 + 0.2 * rng.uniform();
  normalize(initial_);
  transition_ = num::Matrix(ns, ns);
  emission_ = num::Matrix(ns, nv);
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      transition_(i, j) = 1.0 + 0.2 * rng.uniform();
    }
    normalize(transition_.row(i));
    for (std::size_t v = 0; v < nv; ++v) {
      emission_(i, v) = 1.0 + 0.2 * rng.uniform();
    }
    normalize(emission_.row(i));
  }
  // Initial gap rates: spread around the empirical mean gap.
  double gap_sum = 0.0;
  std::size_t gap_count = 0;
  for (const auto* s : usable) {
    for (const auto& o : *s) {
      if (o.gap > 0.0) {
        gap_sum += o.gap;
        ++gap_count;
      }
    }
  }
  const double mean_gap =
      gap_count > 0 ? gap_sum / static_cast<double>(gap_count) : 60.0;
  gap_rate_.assign(ns, 0.0);
  for (std::size_t i = 0; i < ns; ++i) {
    gap_rate_[i] = 1.0 / (mean_gap * rng.uniform(0.4, 2.5));
  }
  trained_ = true;  // parameters exist from here on

  // Baum-Welch.
  for (std::size_t iter = 0; iter < config_.em_iterations; ++iter) {
    std::vector<double> pi_acc(ns, config_.smoothing);
    num::Matrix a_acc(ns, ns, config_.smoothing);
    num::Matrix b_acc(ns, nv, config_.smoothing);
    std::vector<double> gap_weight(ns, config_.smoothing);
    std::vector<double> gap_time(ns, config_.smoothing * mean_gap);

    for (const auto* seq_ptr : usable) {
      const auto& seq = *seq_ptr;
      const std::size_t T = seq.size();

      // Scaled forward.
      std::vector<std::vector<double>> alpha(T, std::vector<double>(ns));
      std::vector<double> scale(T, 0.0);
      for (std::size_t s = 0; s < ns; ++s) {
        alpha[0][s] = initial_[s] * observation_density(s, seq[0]);
        scale[0] += alpha[0][s];
      }
      if (scale[0] <= 0.0) continue;
      for (double& v : alpha[0]) v /= scale[0];
      for (std::size_t t = 1; t < T; ++t) {
        for (std::size_t s = 0; s < ns; ++s) {
          double acc = 0.0;
          for (std::size_t r = 0; r < ns; ++r) {
            acc += alpha[t - 1][r] * transition_(r, s);
          }
          alpha[t][s] = acc * observation_density(s, seq[t]);
          scale[t] += alpha[t][s];
        }
        if (scale[t] <= 0.0) {
          scale[t] = kDensityFloor;
        }
        for (double& v : alpha[t]) v /= scale[t];
      }

      // Scaled backward.
      std::vector<std::vector<double>> beta(T, std::vector<double>(ns, 1.0));
      for (std::size_t t = T - 1; t-- > 0;) {
        for (std::size_t s = 0; s < ns; ++s) {
          double acc = 0.0;
          for (std::size_t r = 0; r < ns; ++r) {
            acc += transition_(s, r) * observation_density(r, seq[t + 1]) *
                   beta[t + 1][r];
          }
          beta[t][s] = acc / scale[t + 1];
        }
      }

      // Accumulate expected counts.
      for (std::size_t t = 0; t < T; ++t) {
        double norm = 0.0;
        for (std::size_t s = 0; s < ns; ++s) norm += alpha[t][s] * beta[t][s];
        if (norm <= 0.0) continue;
        for (std::size_t s = 0; s < ns; ++s) {
          const double gamma = alpha[t][s] * beta[t][s] / norm;
          if (t == 0) pi_acc[s] += gamma;
          b_acc(s, seq[t].symbol) += gamma;
          if (seq[t].gap > 0.0) {
            gap_weight[s] += gamma;
            gap_time[s] += gamma * seq[t].gap;
          }
        }
        if (t + 1 < T) {
          double xi_norm = 0.0;
          for (std::size_t s = 0; s < ns; ++s) {
            for (std::size_t r = 0; r < ns; ++r) {
              xi_norm += alpha[t][s] * transition_(s, r) *
                         observation_density(r, seq[t + 1]) * beta[t + 1][r];
            }
          }
          if (xi_norm <= 0.0) continue;
          for (std::size_t s = 0; s < ns; ++s) {
            for (std::size_t r = 0; r < ns; ++r) {
              a_acc(s, r) += alpha[t][s] * transition_(s, r) *
                             observation_density(r, seq[t + 1]) *
                             beta[t + 1][r] / xi_norm;
            }
          }
        }
      }
    }

    // M-step.
    initial_ = pi_acc;
    normalize(initial_);
    for (std::size_t s = 0; s < ns; ++s) {
      for (std::size_t r = 0; r < ns; ++r) transition_(s, r) = a_acc(s, r);
      normalize(transition_.row(s));
      for (std::size_t v = 0; v < nv; ++v) emission_(s, v) = b_acc(s, v);
      normalize(emission_.row(s));
      gap_rate_[s] = gap_weight[s] / gap_time[s];
      gap_rate_[s] = std::clamp(gap_rate_[s], 1e-8, 1e6);
    }
  }

    double total_ll = 0.0;
    for (const auto* s : usable) total_ll += log_likelihood(*s);
    if (total_ll > best_ll) {
      best_ll = total_ll;
      best = Params{initial_, transition_, emission_, gap_rate_};
    }
  }
  initial_ = std::move(best.initial);
  transition_ = std::move(best.transition);
  emission_ = std::move(best.emission);
  gap_rate_ = std::move(best.gap_rate);
}

double Hsmm::log_likelihood(const HsmmSequence& seq) const {
  if (!trained_) throw std::logic_error("Hsmm: not trained");
  if (seq.empty()) return 0.0;
  const std::size_t ns = config_.num_states;
  std::vector<double> alpha(ns), next(ns);
  double ll = 0.0;
  for (std::size_t s = 0; s < ns; ++s) {
    const HsmmObservation o{std::min(seq[0].symbol, config_.num_symbols - 1),
                            seq[0].gap};
    alpha[s] = initial_[s] * observation_density(s, o);
  }
  double scale = 0.0;
  for (double v : alpha) scale += v;
  scale = std::max(scale, kDensityFloor);
  for (double& v : alpha) v /= scale;
  ll += std::log(scale);
  for (std::size_t t = 1; t < seq.size(); ++t) {
    const HsmmObservation o{std::min(seq[t].symbol, config_.num_symbols - 1),
                            seq[t].gap};
    scale = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      double acc = 0.0;
      for (std::size_t r = 0; r < ns; ++r) acc += alpha[r] * transition_(r, s);
      next[s] = acc * observation_density(s, o);
      scale += next[s];
    }
    scale = std::max(scale, kDensityFloor);
    for (std::size_t s = 0; s < ns; ++s) alpha[s] = next[s] / scale;
    ll += std::log(scale);
  }
  return ll;
}

// ---------------------------------------------------------------------------

HsmmPredictor::HsmmPredictor(HsmmPredictorConfig config)
    : config_(std::move(config)) {
  config_.windows.validate();
  if (config_.num_states == 0) {
    throw std::invalid_argument("HsmmPredictor: num_states must be > 0");
  }
}

std::string HsmmPredictor::name() const {
  return config_.model_durations ? "HSMM" : "HMM";
}

HsmmSequence HsmmPredictor::encode(const mon::ErrorSequence& sequence) const {
  HsmmSequence out;
  out.reserve(sequence.events.size());
  double prev = -1.0;
  for (const auto& e : sequence.events) {
    HsmmObservation o;
    const auto it = vocab_.find(e.event_id);
    o.symbol = it != vocab_.end() ? it->second : unknown_symbol_;
    o.gap = (prev >= 0.0 && config_.model_durations)
                ? std::max(e.time - prev, 0.0)
                : 0.0;
    prev = e.time;
    out.push_back(o);
  }
  return out;
}

void HsmmPredictor::train(
    std::span<const mon::ErrorSequence> failure_sequences,
    std::span<const mon::ErrorSequence> nonfailure_sequences) {
  if (failure_sequences.empty() || nonfailure_sequences.empty()) {
    throw std::invalid_argument(
        "HsmmPredictor::train: need both sequence classes");
  }
  vocab_.clear();
  auto index_events = [&](std::span<const mon::ErrorSequence> seqs) {
    for (const auto& s : seqs) {
      for (const auto& e : s.events) {
        vocab_.emplace(e.event_id, vocab_.size());
      }
    }
  };
  index_events(failure_sequences);
  index_events(nonfailure_sequences);
  if (vocab_.empty()) {
    throw std::invalid_argument(
        "HsmmPredictor::train: training sequences contain no events");
  }
  unknown_symbol_ = vocab_.size();  // reserved extra symbol

  auto encode_all = [&](std::span<const mon::ErrorSequence> seqs) {
    std::vector<HsmmSequence> out;
    out.reserve(seqs.size());
    for (const auto& s : seqs) out.push_back(encode(s));
    return out;
  };
  auto fail_enc = encode_all(failure_sequences);
  auto ok_enc = encode_all(nonfailure_sequences);
  // A class whose windows are all empty (e.g., a quiet system's non-failure
  // windows) still needs a likelihood model for scoring non-empty windows:
  // give it one pseudo-observation of the reserved unknown symbol, which
  // yields a near-uninformative model; the empty-window evidence term then
  // carries the discrimination.
  auto ensure_nonempty = [&](std::vector<HsmmSequence>& seqs) {
    for (const auto& s : seqs) {
      if (!s.empty()) return;
    }
    seqs.push_back(HsmmSequence{{unknown_symbol_, 0.0}});
  };
  ensure_nonempty(fail_enc);
  ensure_nonempty(ok_enc);

  // Empty-sequence statistics per class (an empty error window is itself
  // evidence: failures are almost always preceded by *some* errors).
  auto empty_fraction = [](const std::vector<HsmmSequence>& seqs) {
    std::size_t empty = 0;
    for (const auto& s : seqs) empty += s.empty() ? 1 : 0;
    return (static_cast<double>(empty) + 1.0) /
           (static_cast<double>(seqs.size()) + 2.0);  // Laplace
  };
  empty_fail_ = empty_fraction(fail_enc);
  empty_ok_ = empty_fraction(ok_enc);
  prior_log_odds_ = std::log(static_cast<double>(failure_sequences.size())) -
                    std::log(static_cast<double>(nonfailure_sequences.size()));

  Hsmm::Config mc;
  mc.num_states = config_.num_states;
  mc.num_symbols = vocab_.size() + 1;
  mc.em_iterations = config_.em_iterations;
  mc.seed = config_.seed;
  models_.clear();
  models_.emplace_back(mc);
  models_.emplace_back(mc);
  models_[0].train(fail_enc);
  models_[1].train(ok_enc);
  trained_ = true;
}

double HsmmPredictor::score(const mon::ErrorSequence& sequence) const {
  if (!trained_) throw std::logic_error("HsmmPredictor: not trained");
  const auto enc = encode(sequence);
  double z;
  if (enc.empty()) {
    z = std::log(empty_fail_) - std::log(empty_ok_);
  } else {
    const double llf = models_[0].log_likelihood(enc);
    const double lln = models_[1].log_likelihood(enc);
    // Class log-likelihood ratio (Bayes factor), length-normalized per the
    // configured scheme, plus the evidence of a non-empty window.
    double ratio = llf - lln;
    switch (config_.normalization) {
      case LikelihoodNormalization::kPerEvent:
        ratio /= static_cast<double>(enc.size());
        break;
      case LikelihoodNormalization::kSqrt:
        ratio /= std::sqrt(static_cast<double>(enc.size()));
        break;
      case LikelihoodNormalization::kNone:
        break;
    }
    z = ratio + std::log1p(-empty_fail_) - std::log1p(-empty_ok_);
  }
  return num::sigmoid(0.5 * (z + 0.2 * prior_log_odds_));
}

}  // namespace pfm::pred
