#pragma once

#include <cstdint>
#include <vector>

#include "prediction/kernels.hpp"
#include "prediction/predictor.hpp"

namespace pfm::pred {

/// Variable-selection strategy for UBF (Sect. 3.2 / [35]).
enum class VariableSelection : std::uint8_t {
  kAll = 0,       ///< no selection: use every monitored variable
  kForward = 1,   ///< greedy forward selection
  kBackward = 2,  ///< greedy backward elimination
  kPwa = 3,       ///< Probabilistic Wrapper Approach (the paper's method)
  kExpert = 4     ///< fixed, human-chosen variable list
};

/// Configuration of the UBF failure predictor.
struct UbfConfig {
  WindowGeometry windows;

  /// Number of basis functions.
  std::size_t num_kernels = 8;

  /// true: universal basis functions (Gaussian/sigmoid mixture per Eq. 1,
  /// with trainable mixture weights); false: plain radial basis functions
  /// (the ablation baseline UBF was introduced to improve upon).
  bool mixture_kernels = true;

  VariableSelection selection = VariableSelection::kPwa;
  /// Variable indices used when selection == kExpert.
  std::vector<std::size_t> expert_variables;

  /// When true, the feature space is augmented with the trailing slope of
  /// every monitored variable (computed over the data window). Slow
  /// resource exhaustion such as memory leaks is far better captured by
  /// level + trend than by the instantaneous level alone; [35] likewise
  /// derives aggregate variables before selection.
  bool include_trend_features = true;

  /// Subset-evaluation budget of the PWA search.
  std::size_t pwa_iterations = 90;
  /// Nelder-Mead budget for the kernel-shape optimization.
  std::size_t shape_evaluations = 400;

  /// Cap on training windows (subsampled, class-stratified) to bound
  /// training cost on long traces.
  std::size_t max_train_windows = 3000;

  /// Ridge damping of the least-squares weight fit.
  double ridge = 1e-6;

  std::uint64_t seed = 7;
};

/// Universal Basis Functions failure predictor (Hoffmann/Malek [37]).
///
/// Pipeline per Fig. 5: (1) select the most indicative variables with the
/// Probabilistic Wrapper Approach, (2) fit UBF kernels mapping monitoring
/// vectors onto the failure-proneness target, (3) apply during runtime.
/// One basis function is the Eq. 1 mixture
///   k_i(x) = m_i * gaussian(x; c_i, w_i) + (1 - m_i) * sigmoid(x; c_i, w_i)
/// whose mixture weight m_i and width w_i are tuned by derivative-free
/// optimization on a validation split; output weights come from a ridge
/// least-squares fit.
class UbfPredictor final : public SymptomPredictor {
 public:
  explicit UbfPredictor(UbfConfig config);

  std::string name() const override;
  void train(const mon::MonitoringDataset& data) override;
  double score(const SymptomContext& context) const override;

  /// Vectorized scoring: reuses one feature scratch buffer across the
  /// batch and computes only the selected features (score() derives the
  /// slope of every variable; the batch path skips unselected ones).
  void score_batch(std::span<const SymptomContext> contexts,
                   std::span<double> out) const override;

  /// Arena-backed SoA scoring: gathers the selected features of the whole
  /// batch into contiguous per-feature columns inside `scratch`, then
  /// sweeps each Eq. 1 kernel over all contexts at once using cached
  /// width-derived constants. Every arithmetic step mirrors the reference
  /// path expression-for-expression, so results are bit-identical to
  /// score() / the two-argument overload — the conformance suite pins it.
  void score_batch(std::span<const SymptomContext> contexts,
                   std::span<double> out,
                   BatchScratch& scratch) const override;

  /// Indices into the (possibly trend-augmented) feature space of the
  /// selected variables: index j < schema.size() is the level of variable
  /// j; index j >= schema.size() is the slope of variable
  /// j - schema.size(). Empty before training.
  const std::vector<std::size_t>& selected_variables() const noexcept {
    return selected_;
  }

  /// Human-readable names of the selected features ("free_mem_min_mb",
  /// "free_mem_min_mb.slope", ...).
  std::vector<std::string> selected_feature_names(
      const mon::SymptomSchema& schema) const;

  /// Validation AUC achieved by the final model during training.
  double training_validation_auc() const noexcept { return validation_auc_; }

  /// Owning snapshot of the trained scoring model — everything the Eq. 1
  /// sweep needs, with the width-derived constants copied verbatim from
  /// the score cache. This is what the freeze path serializes; a
  /// FrozenPredictor loaded from the resulting artifact scores
  /// bit-identically to this predictor because both run the same
  /// kernels.hpp engine over the same numbers.
  /// Throws std::logic_error before train().
  MixtureModel export_model() const;

 private:
  struct Kernel {
    std::vector<double> center;
    double width = 1.0;
    double mixture = 1.0;  ///< m_i in Eq. 1; 1 = pure Gaussian
  };

  double evaluate_kernel(const Kernel& k, std::span<const double> x) const;
  std::vector<double> features_of(std::span<const double> raw) const;
  double raw_score(std::span<const double> selected_features) const;
  /// Builds the augmented (level + slope) feature vector from a context.
  std::vector<double> augmented_features(const SymptomContext& ctx) const;
  /// Precomputes the width-derived kernel constants and the per-variable
  /// projection ranges used by the SoA path. Each cached value is built
  /// with the exact expression the reference path evaluates inline
  /// (clamped width, 2.0*w*w, 0.3*w, hi-lo), so substituting the cache
  /// cannot change a single bit.
  void rebuild_score_cache();
  /// Non-owning view over the score cache, handed to the shared
  /// kernels.hpp gather/sweep engine. Valid only while trained.
  MixtureModelView score_view() const noexcept;

  UbfConfig config_;
  std::size_t num_raw_vars_ = 0;
  std::vector<std::size_t> selected_;
  std::vector<double> feature_lo_, feature_hi_;  // scaling of selected vars
  std::vector<Kernel> kernels_;
  std::vector<double> weights_;  // one per kernel + bias
  double validation_auc_ = 0.0;
  bool trained_ = false;

  // SoA scoring cache (see rebuild_score_cache()).
  std::vector<double> kernel_w_;           // max(width, 1e-6)
  std::vector<double> kernel_two_w_sq_;    // 2.0 * w * w (Gaussian scale)
  std::vector<double> kernel_step_scale_;  // 0.3 * w (sigmoid scale)
  std::vector<double> kernel_mixture_;     // m_i per kernel
  std::vector<double> kernel_centers_;     // num_kernels x dim, row-major
  std::vector<double> feature_range_;      // hi - lo per selected variable
};

}  // namespace pfm::pred
