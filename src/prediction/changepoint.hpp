#pragma once

#include <cstddef>

namespace pfm::pred {

/// Two-sided CUSUM change-point detector (Basseville/Nikiforov [8]).
///
/// Sect. 6: "Online change point detection algorithms ... can be used to
/// determine whether the [predictor's] parameters have to be re-adjusted"
/// after configuration changes, updates or upgrades. Feed it a stream of
/// observations (e.g., a predictor's error or a monitored variable); it
/// reports when the mean shifts by more than `drift` with cumulative
/// evidence `threshold`.
class Cusum {
 public:
  /// `reference`: in-control mean; `drift`: half the shift magnitude to
  /// detect; `threshold`: alarm level (in the observation's units).
  Cusum(double reference, double drift, double threshold);

  /// Adds one observation; returns true when a change is detected (the
  /// detector resets itself afterwards).
  bool add(double x);

  double positive_sum() const noexcept { return s_pos_; }
  double negative_sum() const noexcept { return s_neg_; }
  std::size_t alarms() const noexcept { return alarms_; }

  /// Re-baselines the detector to a new in-control mean.
  void rebase(double reference);

 private:
  double reference_;
  double drift_;
  double threshold_;
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
  std::size_t alarms_ = 0;
};

/// Page-Hinkley test: detects mean increase in a stream without a known
/// in-control mean (it tracks the running mean itself).
class PageHinkley {
 public:
  /// `delta`: tolerated deviation; `threshold`: alarm level.
  PageHinkley(double delta, double threshold);

  /// Adds one observation; returns true on detected change (then resets).
  bool add(double x);

  std::size_t alarms() const noexcept { return alarms_; }

 private:
  void reset();

  double delta_;
  double threshold_;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double min_cumulative_ = 0.0;
  std::size_t n_ = 0;
  std::size_t alarms_ = 0;
};

}  // namespace pfm::pred
