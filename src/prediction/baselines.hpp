#pragma once

#include <cstdint>
#include <vector>

#include "numerics/distributions.hpp"
#include "prediction/predictor.hpp"

namespace pfm::pred {

/// Simplest symptom baseline: warn on the level of the single most
/// label-correlated monitoring variable. Training picks the variable and
/// its direction (is high or low failure-prone?) by point-biserial
/// correlation on labeled windows; the score is the standardized signed
/// level squashed to (0,1).
class ThresholdPredictor final : public SymptomPredictor {
 public:
  explicit ThresholdPredictor(WindowGeometry windows);

  std::string name() const override { return "Threshold"; }
  void train(const mon::MonitoringDataset& data) override;
  double score(const SymptomContext& context) const override;
  void score_batch(std::span<const SymptomContext> contexts,
                   std::span<double> out) const override;

  /// Index of the chosen variable (valid after training).
  std::size_t variable() const noexcept { return variable_; }

 private:
  WindowGeometry windows_;
  std::size_t variable_ = 0;
  double direction_ = 1.0;  // +1: high is bad, -1: low is bad
  double mean_ = 0.0;
  double stddev_ = 1.0;
  bool trained_ = false;
};

/// Trend-analysis baseline in the spirit of Garg et al. [28]: regress the
/// most indicative resource variable over the trailing context window and
/// combine the standardized level with the standardized slope (both
/// oriented toward failure). Captures slow resource exhaustion such as
/// memory leaks.
class TrendPredictor final : public SymptomPredictor {
 public:
  explicit TrendPredictor(WindowGeometry windows);

  std::string name() const override { return "Trend"; }
  void train(const mon::MonitoringDataset& data) override;
  double score(const SymptomContext& context) const override;
  /// Vectorized: reuses the regression buffers across the batch.
  void score_batch(std::span<const SymptomContext> contexts,
                   std::span<double> out) const override;
  /// Arena-backed: same results, regression buffers live in the caller's
  /// scratch so repeated rounds allocate nothing.
  void score_batch(std::span<const SymptomContext> contexts,
                   std::span<double> out,
                   BatchScratch& scratch) const override;

  std::size_t variable() const noexcept { return variable_; }

 private:
  WindowGeometry windows_;
  std::size_t variable_ = 0;
  double direction_ = 1.0;
  double mean_ = 0.0;
  double stddev_ = 1.0;
  double slope_scale_ = 1.0;
  bool trained_ = false;
};

/// Failure prediction from the failure log alone (the "failure tracking"
/// branch of Fig. 3, cf. [20,61]): fit a lifetime distribution to the
/// failure inter-arrival times and score the conditional probability of a
/// failure within the prediction period given survival so far. Blind to
/// symptoms and error logs — the paper's motivation for runtime
/// monitoring is precisely that this carries little signal for short-term
/// prediction.
class FailureTrackingPredictor final : public SymptomPredictor {
 public:
  explicit FailureTrackingPredictor(WindowGeometry windows);

  std::string name() const override { return "FailureTracking"; }
  void train(const mon::MonitoringDataset& data) override;
  double score(const SymptomContext& context) const override;
  void score_batch(std::span<const SymptomContext> contexts,
                   std::span<double> out) const override;

  bool uses_weibull() const noexcept { return use_weibull_; }

 private:
  WindowGeometry windows_;
  num::Weibull weibull_{};
  num::Exponential exponential_{};
  bool use_weibull_ = false;
  bool trained_ = false;
};

/// Dispersion Frame Technique-inspired event baseline (Lin/Siewiorek
/// [51,52]): heuristic rules over error inter-arrival times within the
/// data window — bursts, acceleration, repeated identical errors and a
/// rate threshold calibrated on non-failure windows. The score is the
/// weighted fraction of fired rules.
class DftPredictor final : public EventPredictor {
 public:
  DftPredictor();

  std::string name() const override { return "DFT"; }
  void train(std::span<const mon::ErrorSequence> failure_sequences,
             std::span<const mon::ErrorSequence> nonfailure_sequences) override;
  double score(const mon::ErrorSequence& sequence) const override;
  void score_batch(std::span<const mon::ErrorSequence> sequences,
                   std::span<double> out) const override;

 private:
  double rate_threshold_ = 1.0;  // events per window, 95th pct of non-failure
  bool trained_ = false;
};

/// Eventset-mining baseline (Vilalta et al. [73]): mine event-id sets that
/// are frequent in failure windows and infrequent otherwise; score a
/// window by the best confidence among the mined sets it contains.
class EventsetPredictor final : public EventPredictor {
 public:
  struct Config {
    double min_support = 0.1;     ///< of failure sequences
    double min_confidence = 0.3;  ///< precision of the set on training data
    std::size_t max_set_size = 2;
  };

  explicit EventsetPredictor(Config config);
  EventsetPredictor() : EventsetPredictor(Config{}) {}

  std::string name() const override { return "Eventset"; }
  void train(std::span<const mon::ErrorSequence> failure_sequences,
             std::span<const mon::ErrorSequence> nonfailure_sequences) override;
  double score(const mon::ErrorSequence& sequence) const override;
  /// Vectorized: reuses one event-id set across the batch instead of
  /// building a fresh std::set per sequence.
  void score_batch(std::span<const mon::ErrorSequence> sequences,
                   std::span<double> out) const override;
  /// Arena-backed: the event-id membership structure becomes a sorted
  /// vector in the caller's scratch (node-free, reused across rounds);
  /// set-containment answers — and therefore scores — are identical.
  void score_batch(std::span<const mon::ErrorSequence> sequences,
                   std::span<double> out,
                   BatchScratch& scratch) const override;

  std::size_t num_mined_sets() const noexcept { return sets_.size(); }

 private:
  struct MinedSet {
    std::vector<std::int32_t> ids;  // sorted
    double confidence = 0.0;
  };

  Config config_;
  std::vector<MinedSet> sets_;
  double base_rate_ = 0.05;
  bool trained_ = false;
};

}  // namespace pfm::pred
