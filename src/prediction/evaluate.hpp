#pragma once

#include <string>
#include <vector>

#include "eval/metrics.hpp"
#include "prediction/predictor.hpp"

namespace pfm::pred {

/// Options of the offline evaluation harness.
struct EvalOptions {
  WindowGeometry windows;
  /// Evaluation-grid step for event predictors, seconds.
  double stride = 60.0;
  /// Trailing samples handed to symptom predictors as context.
  std::size_t context_samples = 20;
  /// When true (default), an instant also counts as failure-prone when the
  /// failure strikes *earlier* than the lead time — the warning is late
  /// but correct, and countermeasures with shorter setup still help. When
  /// false, only failures inside [t + lead, t + lead + prediction_window)
  /// count (the strict Fig. 6 training semantics).
  bool count_early_failures = true;
};

/// One scored evaluation instant.
struct ScoredInstant {
  double time = 0.0;
  double score = 0.0;
  int label = 0;  ///< 1 when a failure follows within the prediction window
};

/// Aggregate accuracy report in the paper's Sect. 3.3 format: AUC plus
/// precision/recall/F/fpr at the maximum-F-measure threshold.
struct PredictorReport {
  std::string name;
  double auc = 0.0;
  double threshold = 0.0;
  eval::ContingencyTable table;
  std::size_t num_instants = 0;
  std::size_t num_positive = 0;

  double precision() const noexcept { return table.precision(); }
  double recall() const noexcept { return table.recall(); }
  double false_positive_rate() const noexcept {
    return table.false_positive_rate();
  }
  double f_measure() const noexcept { return table.f_measure(); }
};

/// Scores a trained symptom predictor on every labelable sample of the
/// test trace, replaying the online situation: at each sample the
/// predictor sees only the trailing context and past failures.
std::vector<ScoredInstant> score_on_grid(const SymptomPredictor& predictor,
                                         const mon::MonitoringDataset& test,
                                         const EvalOptions& options);

/// Scores a trained event predictor on a uniform time grid over the test
/// trace: at each grid instant the predictor sees the error events inside
/// the trailing data window (Fig. 4).
std::vector<ScoredInstant> score_on_grid(const EventPredictor& predictor,
                                         const mon::MonitoringDataset& test,
                                         const EvalOptions& options);

/// Computes AUC and the maximum-F-measure operating point from scored
/// instants. Throws std::invalid_argument when the instants are empty or
/// single-class.
PredictorReport make_report(std::string name,
                            const std::vector<ScoredInstant>& instants);

/// Renders a one-line summary ("name: AUC=.. precision=.. ...").
std::string to_string(const PredictorReport& report);

}  // namespace pfm::pred
