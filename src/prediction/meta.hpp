#pragma once

#include <span>
#include <vector>

#include "numerics/logistic.hpp"
#include "numerics/matrix.hpp"

namespace pfm::pred {

/// Stacked generalization (Wolpert [34]), the meta-learning scheme the
/// architectural blueprint proposes for fusing the per-layer failure
/// predictors (Sect. 6; applied to Blue Gene/L in [32]).
///
/// Level-0 models are the individual predictors; the level-1 combiner here
/// is a regularized logistic regression over their scores. fit() expects
/// out-of-sample level-0 scores (scores produced on data the level-0
/// models were not trained on), per the stacking recipe.
class StackedGeneralization {
 public:
  /// `level0_scores` is row-major n x k (n instants, k base predictors);
  /// `labels` the ground truth. Throws std::invalid_argument on shape
  /// mismatch or single-class labels.
  void fit(std::span<const double> level0_scores, std::size_t num_predictors,
           std::span<const int> labels);

  /// Combined failure-proneness from one vector of base scores.
  double combine(std::span<const double> scores) const;

  bool fitted() const noexcept { return combiner_.fitted(); }

  /// Learned weight per base predictor (insight into which layer's
  /// predictor carries signal — the blueprint's "translucency").
  std::span<const double> weights() const noexcept {
    return combiner_.weights();
  }

 private:
  num::LogisticRegression combiner_;
};

}  // namespace pfm::pred
