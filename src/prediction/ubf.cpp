#include "prediction/ubf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eval/metrics.hpp"
#include "numerics/kmeans.hpp"
#include "numerics/stats.hpp"
#include "numerics/linalg.hpp"
#include "numerics/logistic.hpp"
#include "numerics/matrix.hpp"
#include "numerics/optimize.hpp"
#include "numerics/rng.hpp"

namespace pfm::pred {

namespace {

/// A class-stratified design set: scaled feature rows plus binary labels.
struct DesignSet {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
};

double distance(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

/// Quick reference model used inside variable selection: k-means centers,
/// fixed-width Gaussian kernels, ridge least squares. Returns validation
/// AUC (0.5 when degenerate).
double quick_fit_auc(const DesignSet& train, const DesignSet& val,
                     std::size_t num_kernels, double ridge, num::Rng& rng) {
  const std::size_t n = train.x.size();
  if (n < 4 || val.x.empty()) return 0.5;
  const std::size_t dim = train.x.front().size();
  if (dim == 0) return 0.5;
  const std::size_t k = std::min(num_kernels, n / 2);
  if (k == 0) return 0.5;

  std::vector<double> flat;
  flat.reserve(n * dim);
  for (const auto& row : train.x) flat.insert(flat.end(), row.begin(), row.end());
  const auto km = num::kmeans(flat, dim, k, rng, 30);

  // Width: mean distance between centers (or 1.0 for a single kernel).
  double width = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      width += distance(km.center(i), km.center(j));
      ++pairs;
    }
  }
  width = pairs > 0 ? std::max(width / static_cast<double>(pairs), 1e-3) : 1.0;

  auto design_row = [&](std::span<const double> x, std::vector<double>& row) {
    for (std::size_t i = 0; i < k; ++i) {
      const double d = distance(x, km.center(i));
      row[i] = std::exp(-d * d / (2.0 * width * width));
    }
    row[k] = 1.0;
  };

  num::Matrix a(n, k + 1);
  std::vector<double> row(k + 1);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    design_row(train.x[i], row);
    for (std::size_t j = 0; j <= k; ++j) a(i, j) = row[j];
    b[i] = static_cast<double>(train.y[i]);
  }
  std::vector<double> w;
  try {
    w = num::least_squares(a, b, ridge);
  } catch (const std::exception&) {
    return 0.5;
  }

  std::vector<double> scores(val.x.size());
  for (std::size_t i = 0; i < val.x.size(); ++i) {
    design_row(val.x[i], row);
    scores[i] = num::dot(row, w);
  }
  try {
    return eval::auc(scores, val.y);
  } catch (const std::exception&) {
    return 0.5;
  }
}

}  // namespace

UbfPredictor::UbfPredictor(UbfConfig config) : config_(std::move(config)) {
  config_.windows.validate();
  if (config_.num_kernels == 0) {
    throw std::invalid_argument("UbfPredictor: num_kernels must be > 0");
  }
  if (config_.selection == VariableSelection::kExpert &&
      config_.expert_variables.empty()) {
    throw std::invalid_argument(
        "UbfPredictor: expert selection needs expert_variables");
  }
}

std::string UbfPredictor::name() const {
  return config_.mixture_kernels ? "UBF" : "RBF";
}

double UbfPredictor::evaluate_kernel(const Kernel& k,
                                     std::span<const double> x) const {
  const double d = distance(x, k.center);
  const double w = std::max(k.width, 1e-6);
  // Eq. 1: mixture of a Gaussian "peak" and a sigmoidal "step" over the
  // distance to the kernel center.
  const double gaussian = std::exp(-d * d / (2.0 * w * w));
  if (!config_.mixture_kernels) return gaussian;
  const double step = 1.0 / (1.0 + std::exp((d - w) / (0.3 * w)));
  return k.mixture * gaussian + (1.0 - k.mixture) * step;
}

std::vector<double> UbfPredictor::features_of(
    std::span<const double> raw) const {
  std::vector<double> out(selected_.size());
  for (std::size_t i = 0; i < selected_.size(); ++i) {
    const double lo = feature_lo_[i];
    const double hi = feature_hi_[i];
    const double range = hi - lo;
    double v = range > 0.0 ? (raw[selected_[i]] - lo) / range : 0.5;
    // Clamp mild extrapolation so unseen extremes stay in kernel reach.
    out[i] = std::clamp(v, -0.5, 1.5);
  }
  return out;
}

double UbfPredictor::raw_score(std::span<const double> x) const {
  double s = weights_.back();  // bias
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    s += weights_[i] * evaluate_kernel(kernels_[i], x);
  }
  return s;
}

void UbfPredictor::train(const mon::MonitoringDataset& data) {
  num_raw_vars_ = data.schema().size();
  auto windows = data.labeled_windows(config_.windows.lead_time,
                                      config_.windows.prediction_window);
  if (config_.include_trend_features) {
    // Append the trailing slope of every variable, regressed over the data
    // window ending at each sample.
    const auto samples = data.samples();
    std::size_t begin = 0;  // first sample inside the current window
    std::vector<double> t_buf, v_buf;
    for (std::size_t wi = 0; wi < windows.size(); ++wi) {
      const double t = windows[wi].time;
      while (begin < samples.size() &&
             samples[begin].time <= t - config_.windows.data_window) {
        ++begin;
      }
      // Index of the sample at this window's time.
      std::size_t end = begin;
      while (end < samples.size() && samples[end].time < t) ++end;
      const std::size_t count = end - begin + 1;
      windows[wi].features.resize(2 * num_raw_vars_);
      for (std::size_t j = 0; j < num_raw_vars_; ++j) {
        double slope = 0.0;
        if (count >= 2 && end < samples.size()) {
          t_buf.clear();
          v_buf.clear();
          for (std::size_t s = begin; s <= end; ++s) {
            t_buf.push_back(samples[s].time);
            v_buf.push_back(samples[s].values[j]);
          }
          slope = num::fit_line(t_buf, v_buf).slope;
        }
        windows[wi].features[num_raw_vars_ + j] = slope;
      }
    }
  }
  std::size_t positives = 0;
  for (const auto& w : windows) positives += w.failure_follows ? 1 : 0;
  if (windows.empty() || positives == 0 || positives == windows.size()) {
    throw std::invalid_argument(
        "UbfPredictor::train: need both failure and non-failure windows");
  }
  const std::size_t num_vars =
      config_.include_trend_features ? 2 * num_raw_vars_ : num_raw_vars_;

  num::Rng rng(config_.seed);

  // Class-stratified subsample, then 70/30 stratified train/validation.
  std::vector<std::size_t> pos_idx, neg_idx;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    (windows[i].failure_follows ? pos_idx : neg_idx).push_back(i);
  }
  auto subsample = [&](std::vector<std::size_t>& idx, std::size_t cap) {
    if (idx.size() <= cap) return;
    const auto perm = rng.permutation(idx.size());
    std::vector<std::size_t> keep(cap);
    for (std::size_t i = 0; i < cap; ++i) keep[i] = idx[perm[i]];
    idx = std::move(keep);
  };
  // Keep all positives up to half the budget; negatives fill the rest.
  subsample(pos_idx, config_.max_train_windows / 2);
  subsample(neg_idx, config_.max_train_windows - pos_idx.size());

  auto make_split = [&](const std::vector<std::size_t>& idx,
                        std::vector<std::size_t>& train_part,
                        std::vector<std::size_t>& val_part) {
    const auto perm = rng.permutation(idx.size());
    const std::size_t cut = (idx.size() * 7) / 10;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      (i < cut ? train_part : val_part).push_back(idx[perm[i]]);
    }
  };
  std::vector<std::size_t> train_idx, val_idx;
  make_split(pos_idx, train_idx, val_idx);
  make_split(neg_idx, train_idx, val_idx);

  // Global per-variable scaling learned on the training part.
  std::vector<double> lo(num_vars, 1e300), hi(num_vars, -1e300);
  for (std::size_t i : train_idx) {
    for (std::size_t j = 0; j < num_vars; ++j) {
      lo[j] = std::min(lo[j], windows[i].features[j]);
      hi[j] = std::max(hi[j], windows[i].features[j]);
    }
  }

  auto build_sets = [&](const std::vector<std::size_t>& subset,
                        const std::vector<std::size_t>& idx) {
    DesignSet set;
    set.x.reserve(idx.size());
    set.y.reserve(idx.size());
    for (std::size_t i : idx) {
      std::vector<double> row(subset.size());
      for (std::size_t j = 0; j < subset.size(); ++j) {
        const double range = hi[subset[j]] - lo[subset[j]];
        row[j] = range > 0.0
                     ? (windows[i].features[subset[j]] - lo[subset[j]]) / range
                     : 0.5;
      }
      set.x.push_back(std::move(row));
      set.y.push_back(windows[i].failure_follows ? 1 : 0);
    }
    return set;
  };

  auto evaluate_subset = [&](const std::vector<std::size_t>& subset) {
    if (subset.empty()) return 0.0;
    const auto train_set = build_sets(subset, train_idx);
    const auto val_set = build_sets(subset, val_idx);
    // Two repetitions with different center seeds halve the evaluation
    // noise the wrapper search must overcome.
    const double a1 = quick_fit_auc(train_set, val_set, 6, config_.ridge, rng);
    const double a2 = quick_fit_auc(train_set, val_set, 6, config_.ridge, rng);
    return 0.5 * (a1 + a2);
  };

  // ---- variable selection ---------------------------------------------------
  std::vector<std::size_t> all(num_vars);
  for (std::size_t j = 0; j < num_vars; ++j) all[j] = j;

  auto greedy_forward = [&]() {
    std::vector<std::size_t> current;
    double best_auc = 0.0;
    for (;;) {
      double round_best = best_auc + 1e-4;
      std::size_t round_var = num_vars;
      for (std::size_t j : all) {
        if (std::find(current.begin(), current.end(), j) != current.end()) {
          continue;
        }
        auto candidate = current;
        candidate.push_back(j);
        const double a = evaluate_subset(candidate);
        if (a > round_best) {
          round_best = a;
          round_var = j;
        }
      }
      if (round_var == num_vars) break;
      current.push_back(round_var);
      best_auc = round_best;
    }
    return current;
  };

  switch (config_.selection) {
    case VariableSelection::kAll:
      selected_ = all;
      break;
    case VariableSelection::kExpert:
      selected_ = config_.expert_variables;
      for (std::size_t v : selected_) {
        if (v >= num_vars) {
          throw std::invalid_argument("UbfPredictor: expert variable index");
        }
      }
      break;
    case VariableSelection::kForward: {
      auto current = greedy_forward();
      selected_ = current.empty() ? all : current;
      break;
    }
    case VariableSelection::kBackward: {
      std::vector<std::size_t> current = all;
      double best_auc = evaluate_subset(current);
      while (current.size() > 1) {
        double round_best = best_auc - 1e-4;  // tolerate tiny losses
        std::size_t drop_pos = current.size();
        for (std::size_t p = 0; p < current.size(); ++p) {
          auto candidate = current;
          candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(p));
          const double a = evaluate_subset(candidate);
          if (a >= round_best) {
            round_best = a;
            drop_pos = p;
          }
        }
        if (drop_pos == current.size()) break;
        current.erase(current.begin() + static_cast<std::ptrdiff_t>(drop_pos));
        best_auc = std::max(best_auc, round_best);
      }
      selected_ = current;
      break;
    }
    case VariableSelection::kPwa: {
      // Probabilistic wrapper ([35]): combines forward selection and
      // backward elimination in a probabilistic framework. We seed the
      // search with the greedy-forward solution, explore stochastically by
      // sampling subsets from per-variable inclusion probabilities (shifted
      // toward the elite subsets seen so far), and finish with local
      // add/remove refinement. A small parsimony bonus breaks ties in
      // favor of smaller subsets.
      const auto forward_seed = greedy_forward();
      std::vector<double> p(num_vars, 0.2);
      for (std::size_t j : forward_seed) p[j] = 0.8;
      struct Scored {
        double auc;
        std::vector<std::size_t> subset;
      };
      std::vector<Scored> seen;
      if (!forward_seed.empty()) {
        seen.push_back({evaluate_subset(forward_seed) -
                            0.002 * static_cast<double>(forward_seed.size()),
                        forward_seed});
      }
      for (std::size_t iter = 0; iter < config_.pwa_iterations; ++iter) {
        std::vector<std::size_t> subset;
        for (std::size_t j = 0; j < num_vars; ++j) {
          if (rng.bernoulli(p[j])) subset.push_back(j);
        }
        if (subset.empty()) {
          subset.push_back(static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(num_vars) - 1)));
        }
        const double parsimony =
            0.002 * static_cast<double>(subset.size());
        const double a = evaluate_subset(subset) - parsimony;
        seen.push_back({a, std::move(subset)});
        std::sort(seen.begin(), seen.end(),
                  [](const Scored& x, const Scored& y) { return x.auc > y.auc; });
        // Elite inclusion frequencies drive the sampling distribution.
        const std::size_t elite = std::max<std::size_t>(seen.size() / 4, 1);
        std::vector<double> freq(num_vars, 0.0);
        for (std::size_t e = 0; e < elite; ++e) {
          for (std::size_t j : seen[e].subset) freq[j] += 1.0;
        }
        for (std::size_t j = 0; j < num_vars; ++j) {
          const double target = freq[j] / static_cast<double>(elite);
          p[j] = std::clamp(0.5 * p[j] + 0.5 * (0.1 + 0.8 * target), 0.05,
                            0.95);
        }
      }
      std::vector<std::size_t> best =
          seen.front().subset.empty() ? all : seen.front().subset;
      double best_auc = evaluate_subset(best);
      // Local refinement, the "backward" and "forward" moves of the
      // wrapper: prune variables whose removal does not hurt, then try
      // adding each unused variable once.
      bool changed = true;
      while (changed && best.size() > 1) {
        changed = false;
        for (std::size_t pos = 0; pos < best.size(); ++pos) {
          auto candidate = best;
          candidate.erase(candidate.begin() +
                          static_cast<std::ptrdiff_t>(pos));
          const double a = evaluate_subset(candidate);
          if (a >= best_auc - 1e-4) {
            best = std::move(candidate);
            best_auc = std::max(best_auc, a);
            changed = true;
            break;
          }
        }
      }
      for (std::size_t j : all) {
        if (std::find(best.begin(), best.end(), j) != best.end()) continue;
        auto candidate = best;
        candidate.push_back(j);
        const double a = evaluate_subset(candidate);
        if (a > best_auc + 1e-3) {
          best = std::move(candidate);
          best_auc = a;
        }
      }
      // Final pick among the search's leading candidates by a repeated
      // (lower-variance) evaluation — many noisy comparisons above suffer
      // from the winner's curse, so the finalists get a cleaner contest.
      std::vector<std::vector<std::size_t>> finalists{best};
      if (!forward_seed.empty()) finalists.push_back(forward_seed);
      if (!seen.empty() && !seen.front().subset.empty()) {
        finalists.push_back(seen.front().subset);
      }
      double winner_score = -1.0;
      for (auto& candidate : finalists) {
        double acc = 0.0;
        for (int rep = 0; rep < 3; ++rep) acc += evaluate_subset(candidate);
        if (acc > winner_score) {
          winner_score = acc;
          selected_ = candidate;
        }
      }
      break;
    }
  }
  std::sort(selected_.begin(), selected_.end());

  // Freeze the scaling of the selected variables.
  feature_lo_.resize(selected_.size());
  feature_hi_.resize(selected_.size());
  for (std::size_t i = 0; i < selected_.size(); ++i) {
    feature_lo_[i] = lo[selected_[i]];
    feature_hi_[i] = hi[selected_[i]];
  }

  // ---- kernel placement ------------------------------------------------------
  const auto train_set = build_sets(selected_, train_idx);
  const auto val_set = build_sets(selected_, val_idx);
  const std::size_t dim = selected_.size();
  const std::size_t k = std::min(config_.num_kernels, train_set.x.size() / 2);

  std::vector<double> flat;
  flat.reserve(train_set.x.size() * dim);
  for (const auto& r : train_set.x) flat.insert(flat.end(), r.begin(), r.end());
  const auto km = num::kmeans(flat, dim, k, rng, 50);

  kernels_.clear();
  kernels_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    Kernel kn;
    kn.center.assign(km.center(i).begin(), km.center(i).end());
    // Initial width: RMS distance of the kernel's assigned points.
    double acc = 0.0;
    std::size_t cnt = 0;
    for (std::size_t n = 0; n < train_set.x.size(); ++n) {
      if (km.assignment[n] != i) continue;
      const double d = distance(train_set.x[n], kn.center);
      acc += d * d;
      ++cnt;
    }
    kn.width = cnt > 0 ? std::max(std::sqrt(acc / static_cast<double>(cnt)), 0.05)
                       : 0.3;
    kn.mixture = 1.0;
    kernels_.push_back(std::move(kn));
  }

  // Solves output weights by ridge least squares for the current kernel
  // shapes and returns validation AUC.
  auto fit_weights_and_auc = [&]() {
    const std::size_t n = train_set.x.size();
    num::Matrix a(n, kernels_.size() + 1);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < kernels_.size(); ++j) {
        a(i, j) = evaluate_kernel(kernels_[j], train_set.x[i]);
      }
      a(i, kernels_.size()) = 1.0;
      b[i] = static_cast<double>(train_set.y[i]);
    }
    weights_ = num::least_squares(a, b, config_.ridge);
    std::vector<double> scores(val_set.x.size());
    for (std::size_t i = 0; i < val_set.x.size(); ++i) {
      scores[i] = raw_score(val_set.x[i]);
    }
    try {
      return eval::auc(scores, val_set.y);
    } catch (const std::exception&) {
      return 0.5;
    }
  };

  if (config_.mixture_kernels) {
    // Tune per-kernel log-width and mixture logit on validation AUC.
    std::vector<double> theta;
    for (const auto& kn : kernels_) {
      theta.push_back(std::log(kn.width));
      theta.push_back(1.4);  // logit(m) ~ 0.8 to start near-Gaussian
    }
    auto apply_theta = [&](std::span<const double> th) {
      for (std::size_t i = 0; i < kernels_.size(); ++i) {
        kernels_[i].width = std::clamp(std::exp(th[2 * i]), 1e-3, 10.0);
        kernels_[i].mixture = num::sigmoid(th[2 * i + 1]);
      }
    };
    auto objective = [&](std::span<const double> th) {
      apply_theta(th);
      return 1.0 - fit_weights_and_auc();
    };
    num::NelderMeadOptions opts;
    opts.max_evaluations = config_.shape_evaluations;
    opts.initial_step = 0.4;
    const auto result = num::nelder_mead(objective, theta, opts);
    apply_theta(result.x);
  }
  validation_auc_ = fit_weights_and_auc();
  rebuild_score_cache();
  trained_ = true;
}

void UbfPredictor::rebuild_score_cache() {
  kernel_w_.resize(kernels_.size());
  kernel_two_w_sq_.resize(kernels_.size());
  kernel_step_scale_.resize(kernels_.size());
  kernel_mixture_.resize(kernels_.size());
  kernel_centers_.resize(kernels_.size() * selected_.size());
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    const double w = std::max(kernels_[i].width, 1e-6);
    kernel_w_[i] = w;
    kernel_two_w_sq_[i] = 2.0 * w * w;
    kernel_step_scale_[i] = 0.3 * w;
    kernel_mixture_[i] = kernels_[i].mixture;
    std::copy(kernels_[i].center.begin(), kernels_[i].center.end(),
              kernel_centers_.begin() +
                  static_cast<std::ptrdiff_t>(i * selected_.size()));
  }
  feature_range_.resize(selected_.size());
  for (std::size_t i = 0; i < selected_.size(); ++i) {
    feature_range_[i] = feature_hi_[i] - feature_lo_[i];
  }
}

MixtureModelView UbfPredictor::score_view() const noexcept {
  MixtureModelView v;
  v.selected = selected_.data();
  v.dim = selected_.size();
  v.num_raw_vars = num_raw_vars_;
  v.lo = feature_lo_.data();
  v.range = feature_range_.data();
  v.centers = kernel_centers_.data();
  v.w = kernel_w_.data();
  v.two_w_sq = kernel_two_w_sq_.data();
  v.step_scale = kernel_step_scale_.data();
  v.mixture = kernel_mixture_.data();
  v.weights = weights_.data();
  v.num_kernels = kernels_.size();
  v.mixture_kernels = config_.mixture_kernels;
  v.data_window = config_.windows.data_window;
  return v;
}

MixtureModel UbfPredictor::export_model() const {
  if (!trained_) throw std::logic_error("UbfPredictor: not trained");
  MixtureModel m;
  m.name = name();
  m.mixture_kernels = config_.mixture_kernels;
  m.windows = config_.windows;
  m.num_raw_vars = num_raw_vars_;
  m.selected = selected_;
  m.lo = feature_lo_;
  m.range = feature_range_;
  m.centers = kernel_centers_;
  m.w = kernel_w_;
  m.two_w_sq = kernel_two_w_sq_;
  m.step_scale = kernel_step_scale_;
  m.mixture = kernel_mixture_;
  m.weights = weights_;
  return m;
}

std::vector<double> UbfPredictor::augmented_features(
    const SymptomContext& ctx) const {
  const auto& current = ctx.history.back();
  std::vector<double> raw(current.values.begin(), current.values.end());
  if (!config_.include_trend_features) return raw;
  raw.resize(2 * num_raw_vars_, 0.0);
  const double t0 = current.time - config_.windows.data_window;
  std::vector<double> t_buf, v_buf;
  for (std::size_t j = 0; j < num_raw_vars_; ++j) {
    t_buf.clear();
    v_buf.clear();
    for (const auto& s : ctx.history) {
      if (s.time <= t0) continue;
      t_buf.push_back(s.time);
      v_buf.push_back(s.values[j]);
    }
    raw[num_raw_vars_ + j] =
        t_buf.size() >= 2 ? num::fit_line(t_buf, v_buf).slope : 0.0;
  }
  return raw;
}

std::vector<std::string> UbfPredictor::selected_feature_names(
    const mon::SymptomSchema& schema) const {
  std::vector<std::string> out;
  out.reserve(selected_.size());
  for (std::size_t idx : selected_) {
    out.push_back(idx < schema.size()
                      ? schema.name(idx)
                      : schema.name(idx - schema.size()) + ".slope");
  }
  return out;
}

double UbfPredictor::score(const SymptomContext& context) const {
  if (!trained_) throw std::logic_error("UbfPredictor: not trained");
  if (context.history.empty()) {
    throw std::invalid_argument("UbfPredictor: empty context");
  }
  const auto raw = augmented_features(context);
  const auto x = features_of(raw);
  // Bounded, order-preserving mapping of the raw function output.
  return num::sigmoid(4.0 * (raw_score(x) - 0.5));
}

void UbfPredictor::score_batch(std::span<const SymptomContext> contexts,
                               std::span<double> out) const {
  if (contexts.size() != out.size()) {
    throw std::invalid_argument("score_batch: contexts/out size mismatch");
  }
  if (!trained_) throw std::logic_error("UbfPredictor: not trained");
  // One scratch set for the whole batch; score() allocates the full
  // augmented vector (and regresses every variable's slope) per call,
  // the batch path only materializes the selected features.
  std::vector<double> x(selected_.size());
  std::vector<double> t_buf, v_buf;
  for (std::size_t c = 0; c < contexts.size(); ++c) {
    const auto& ctx = contexts[c];
    if (ctx.history.empty()) {
      throw std::invalid_argument("UbfPredictor: empty context");
    }
    const auto& current = ctx.history.back();
    const double t0 = current.time - config_.windows.data_window;
    for (std::size_t i = 0; i < selected_.size(); ++i) {
      const std::size_t idx = selected_[i];
      double v;
      if (idx < num_raw_vars_) {
        v = current.values[idx];
      } else {
        const std::size_t j = idx - num_raw_vars_;
        t_buf.clear();
        v_buf.clear();
        for (const auto& s : ctx.history) {
          if (s.time <= t0) continue;
          t_buf.push_back(s.time);
          v_buf.push_back(s.values[j]);
        }
        v = t_buf.size() >= 2 ? num::fit_line(t_buf, v_buf).slope : 0.0;
      }
      const double range = feature_hi_[i] - feature_lo_[i];
      const double scaled = range > 0.0 ? (v - feature_lo_[i]) / range : 0.5;
      x[i] = std::clamp(scaled, -0.5, 1.5);
    }
    out[c] = num::sigmoid(4.0 * (raw_score(x) - 0.5));
  }
}

namespace {

// Out-of-line slow paths keep the batched scorer's body free of throw
// statements (pfm-analyze hotpath); the messages match the reference
// 2-arg path exactly so conformance errors stay byte-identical.
// pfm-cold
[[noreturn]] void throw_batch_size_mismatch() {
  throw std::invalid_argument("score_batch: contexts/out size mismatch");
}
// pfm-cold
[[noreturn]] void throw_not_trained() {
  throw std::logic_error("UbfPredictor: not trained");
}

}  // namespace

// pfm-hot
void UbfPredictor::score_batch(std::span<const SymptomContext> contexts,
                               std::span<double> out,
                               BatchScratch& scratch) const {
  if (contexts.size() != out.size()) {
    throw_batch_size_mismatch();
  }
  if (!trained_) throw_not_trained();
  // Gather + sweep live in kernels.cpp — the engine shared with the
  // frozen-artifact path. scratch.kernel picks the sweep: kScalar is
  // bit-identical to score()/the 2-arg overload, kSimd agrees within the
  // documented ULP bound (DESIGN.md §13).
  score_batch_soa(score_view(), contexts, out, scratch);
}

}  // namespace pfm::pred
