#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "prediction/predictor.hpp"

namespace pfm::pred {

/// Non-owning view of a trained Eq. 1 mixture-kernel scoring model: the
/// shared engine behind UbfPredictor's arena-backed score_batch and the
/// frozen-artifact FrozenPredictor. Both wrap the same gather + sweep
/// functions below, which is what makes frozen-vs-live bit-identity hold
/// by construction instead of by test luck.
///
/// All width-derived constants are precomputed with the exact expressions
/// the reference path evaluates inline (w clamped to >= 1e-6, 2*w*w,
/// 0.3*w, hi-lo), so substituting them never changes a bit.
struct MixtureModelView {
  const std::size_t* selected = nullptr;  ///< feature indices, `dim` entries
  std::size_t dim = 0;                    ///< selected feature count
  std::size_t num_raw_vars = 0;           ///< schema size (slope split point)
  const double* lo = nullptr;             ///< per-feature scaling low, `dim`
  const double* range = nullptr;          ///< per-feature hi - lo, `dim`
  const double* centers = nullptr;        ///< num_kernels x dim, row-major
  const double* w = nullptr;              ///< clamped width per kernel
  const double* two_w_sq = nullptr;       ///< 2*w*w per kernel
  const double* step_scale = nullptr;     ///< 0.3*w per kernel
  const double* mixture = nullptr;        ///< Eq. 1 m_i per kernel
  const double* weights = nullptr;        ///< num_kernels + 1, bias last
  std::size_t num_kernels = 0;
  bool mixture_kernels = true;            ///< false: plain RBF (no step term)
  double data_window = 600.0;             ///< slope-regression span (seconds)
};

/// Owning snapshot of the same model — what UbfPredictor::export_model()
/// hands to the freeze path, and what a loaded artifact materializes its
/// header metadata into.
struct MixtureModel {
  std::string name;                ///< predictor name ("UBF"/"RBF")
  bool mixture_kernels = true;
  WindowGeometry windows;
  std::size_t num_raw_vars = 0;
  std::vector<std::size_t> selected;
  std::vector<double> lo;
  std::vector<double> range;
  std::vector<double> centers;     ///< num_kernels x dim, row-major
  std::vector<double> w;
  std::vector<double> two_w_sq;
  std::vector<double> step_scale;
  std::vector<double> mixture;
  std::vector<double> weights;     ///< num_kernels + 1, bias last

  std::size_t num_kernels() const noexcept { return w.size(); }
  std::size_t dim() const noexcept { return selected.size(); }
  MixtureModelView view() const noexcept;
};

/// Gather phase of the SoA path: one contiguous column per selected
/// feature (feature i of context c lands at features[i * batch + c]),
/// levels read from the newest sample, slopes regressed over the data
/// window via scratch.t_buf/v_buf, then scaled and clamped exactly like
/// the reference path. Throws std::invalid_argument (out-of-line,
/// pfm-cold) on an empty context history.
void gather_features(const MixtureModelView& m,
                     std::span<const SymptomContext> contexts,
                     BatchScratch& scratch);

/// Reference kernel sweep over gathered columns: libm exp, bias-first
/// kernels-in-order accumulation — bit-identical to UbfPredictor::score()
/// and the 2-argument overload (the PR-5 conformance contract).
void sweep_scalar(const MixtureModelView& m, std::size_t batch,
                  BatchScratch& scratch, std::span<double> out) noexcept;

/// Vectorized sweep: same columns, same per-context accumulation order,
/// arithmetic routed through num::simd (vexp instead of libm). Scores
/// agree with sweep_scalar within the documented ULP bound; backend
/// choice and batch composition never change the bits it produces.
void sweep_simd(const MixtureModelView& m, std::size_t batch,
                BatchScratch& scratch, std::span<double> out) noexcept;

/// gather_features + the sweep selected by scratch.kernel. The whole
/// arena-backed scoring path of both the live and the frozen predictor.
void score_batch_soa(const MixtureModelView& m,
                     std::span<const SymptomContext> contexts,
                     std::span<double> out, BatchScratch& scratch);

/// Single-context convenience (allocates a local arena; not a hot path):
/// bit-identical to UbfPredictor::score() on the same model.
double score_one(const MixtureModelView& m, const SymptomContext& ctx);

}  // namespace pfm::pred
