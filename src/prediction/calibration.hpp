#pragma once

#include <algorithm>
#include <memory>
#include <utility>

#include "prediction/predictor.hpp"

namespace pfm::pred {

/// Piecewise-linear score calibration: maps a predictor's own decision
/// threshold to 0.5, so heterogeneous predictors can share one warning
/// threshold in the MEA controller (scores below the predictor's threshold
/// land in [0, 0.5), scores above in [0.5, 1]).
inline double calibrate_score(double score, double threshold) {
  const double t = std::clamp(threshold, 1e-9, 1.0 - 1e-9);
  const double s = std::clamp(score, 0.0, 1.0);
  if (s < t) return 0.5 * s / t;
  return 0.5 + 0.5 * (s - t) / (1.0 - t);
}

/// Wraps a trained symptom predictor with a fixed decision threshold
/// (typically the max-F-measure threshold found on validation data).
class CalibratedSymptomPredictor final : public SymptomPredictor {
 public:
  CalibratedSymptomPredictor(std::shared_ptr<const SymptomPredictor> inner,
                             double threshold)
      : inner_(std::move(inner)), threshold_(threshold) {}

  std::string name() const override { return inner_->name() + "+cal"; }
  void train(const mon::MonitoringDataset&) override {
    // The wrapped predictor is already trained; calibration is frozen.
  }
  double score(const SymptomContext& ctx) const override {
    return calibrate_score(inner_->score(ctx), threshold_);
  }

 private:
  std::shared_ptr<const SymptomPredictor> inner_;
  double threshold_;
};

/// Event-predictor counterpart of CalibratedSymptomPredictor.
class CalibratedEventPredictor final : public EventPredictor {
 public:
  CalibratedEventPredictor(std::shared_ptr<const EventPredictor> inner,
                           double threshold)
      : inner_(std::move(inner)), threshold_(threshold) {}

  std::string name() const override { return inner_->name() + "+cal"; }
  void train(std::span<const mon::ErrorSequence>,
             std::span<const mon::ErrorSequence>) override {}
  double score(const mon::ErrorSequence& seq) const override {
    return calibrate_score(inner_->score(seq), threshold_);
  }

 private:
  std::shared_ptr<const EventPredictor> inner_;
  double threshold_;
};

}  // namespace pfm::pred
