#include "obs/quality.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pfm::obs {

namespace {

// pfm-cold [[noreturn]] helpers keep throws off the hot closure.
// pfm-cold
[[noreturn]] void fail(const char* message) {
  throw std::invalid_argument(message);
}

// Half-open failure lookup mirroring MonitoringDataset::failure_within:
// true iff a failure time lies in [t_begin, t_end).
// pfm-hot
bool failure_within(std::span<const double> failures, double t_begin,
                    double t_end) noexcept {
  const auto it = std::lower_bound(failures.begin(), failures.end(), t_begin);
  return it != failures.end() && *it < t_end;
}

std::string lane_suffix(const std::string& label) {
  return "{predictor=\"" + label + "\"}";
}

std::string padded_bin(std::size_t bin) {
  std::string s = std::to_string(bin);
  if (s.size() < 2) s.insert(s.begin(), '0');
  return s;
}

}  // namespace

void QualityConfig::validate() const {
  if (!(lead_time >= 0.0) || !(prediction_window > 0.0)) {
    fail("QualityConfig: lead_time >= 0 and prediction_window > 0 required");
  }
  if (!std::isfinite(warning_threshold)) {
    fail("QualityConfig: warning_threshold must be finite");
  }
  if (pending_capacity == 0) {
    fail("QualityConfig: pending_capacity must be positive");
  }
  if (outcome_window == 0) {
    fail("QualityConfig: outcome_window must be positive");
  }
  if (score_bins == 0 || score_bins > 99) {
    fail("QualityConfig: score_bins must be in [1, 99]");
  }
}

double ConfusionCounts::precision() const noexcept {
  const std::uint64_t warned = true_positives + false_positives;
  if (warned == 0) return 1.0;
  return static_cast<double>(true_positives) / static_cast<double>(warned);
}

double ConfusionCounts::recall() const noexcept {
  const std::uint64_t failures = true_positives + false_negatives;
  if (failures == 0) return 1.0;
  return static_cast<double>(true_positives) / static_cast<double>(failures);
}

double ConfusionCounts::false_positive_rate() const noexcept {
  const std::uint64_t negatives = false_positives + true_negatives;
  if (negatives == 0) return 0.0;
  return static_cast<double>(false_positives) /
         static_cast<double>(negatives);
}

double ConfusionCounts::f_measure() const noexcept {
  const double p = precision();
  const double r = recall();
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

QualityTracker::QualityTracker(const QualityConfig& config,
                               MetricsRegistry* registry)
    : config_(config), registry_(registry) {
  config_.validate();
  if (registry_ == nullptr) {
    fail("QualityTracker: null metrics registry");
  }
  observed_ = &registry_->counter("pfm_quality_observed_total");
  resolved_ = &registry_->counter("pfm_quality_resolved_total");
  evicted_ = &registry_->counter("pfm_quality_evicted_total");
  pending_gauge_ = &registry_->gauge("pfm_quality_pending_instants");
}

void QualityTracker::set_predictors(std::span<const std::string> labels) {
  std::vector<std::string> lanes;
  lanes.reserve(labels.size() + 1);
  for (std::size_t p = 0; p < labels.size(); ++p) {
    std::string label = labels[p];
    const bool clash =
        label == "combined" ||
        std::find(lanes.begin(), lanes.end(), label) != lanes.end();
    if (clash) label += "#" + std::to_string(p);
    lanes.push_back(std::move(label));
  }
  lanes.emplace_back("combined");
  if (lanes == labels_) return;

  // Lane set changed: existing pending instants can no longer be scored
  // against the new lane layout — drop them honestly.
  for (std::size_t n = 0; n < node_count_; ++n) drop_pending(n);
  labels_ = std::move(lanes);
  static constexpr const char* kOutcomeLabel[4] = {"tp", "fp", "tn", "fn"};
  inst_.clear();
  inst_.resize(labels_.size());
  for (std::size_t lane = 0; lane < labels_.size(); ++lane) {
    auto& li = inst_[lane];
    const std::string& label = labels_[lane];
    for (std::size_t code = 0; code < 4; ++code) {
      li.outcomes[code] = &registry_->counter(
          "pfm_quality_outcomes_total{predictor=\"" + label +
          "\",outcome=\"" + kOutcomeLabel[code] + "\"}");
    }
    li.pos_bins.resize(config_.score_bins);
    li.neg_bins.resize(config_.score_bins);
    for (std::size_t bin = 0; bin < config_.score_bins; ++bin) {
      li.pos_bins[bin] = &registry_->counter(
          "pfm_quality_scores_total{predictor=\"" + label +
          "\",label=\"pos\",bin=\"" + padded_bin(bin) + "\"}");
      li.neg_bins[bin] = &registry_->counter(
          "pfm_quality_scores_total{predictor=\"" + label +
          "\",label=\"neg\",bin=\"" + padded_bin(bin) + "\"}");
    }
    li.precision =
        &registry_->gauge("pfm_quality_precision" + lane_suffix(label));
    li.recall = &registry_->gauge("pfm_quality_recall" + lane_suffix(label));
    li.f_measure =
        &registry_->gauge("pfm_quality_f_measure" + lane_suffix(label));
    li.fpr = &registry_->gauge("pfm_quality_fpr" + lane_suffix(label));
    li.auc = &registry_->gauge("pfm_quality_auc" + lane_suffix(label));
  }
  // The flat per-node layout strides by the lane count; rebuild it.
  const std::size_t nodes = node_count_;
  node_count_ = 0;
  pend_time_.clear();
  pend_scores_.clear();
  pend_head_.clear();
  pend_size_.clear();
  cum_.clear();
  win_.clear();
  ring_.clear();
  ring_len_.clear();
  ensure_nodes(nodes);
}

void QualityTracker::ensure_nodes(std::size_t count) {
  if (labels_.empty()) {
    fail("QualityTracker: set_predictors must precede ensure_nodes");
  }
  if (count <= node_count_) return;
  const std::size_t lanes = labels_.size();
  pend_time_.resize(count * config_.pending_capacity, 0.0);
  pend_scores_.resize(count * config_.pending_capacity * lanes, 0.0);
  pend_head_.resize(count, 0);
  pend_size_.resize(count, 0);
  cum_.resize(count * lanes * 4, 0);
  win_.resize(count * lanes * 4, 0);
  ring_.resize(count * lanes * config_.outcome_window, 0);
  ring_len_.resize(count * lanes, 0);
  node_count_ = count;
}

void QualityTracker::drop_pending(std::size_t node) noexcept {
  const std::uint64_t held = pend_size_[node];
  if (held > 0) evicted_->inc(held);
  pend_head_[node] = 0;
  pend_size_[node] = 0;
}

void QualityTracker::reset_node(std::size_t node) {
  if (node >= node_count_) return;
  drop_pending(node);
  const std::size_t lanes = labels_.size();
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t c = cell(node, lane);
    for (std::size_t code = 0; code < 4; ++code) win_[c * 4 + code] = 0;
    ring_len_[c] = 0;
  }
}

// pfm-hot
void QualityTracker::observe(std::size_t node, double time,
                             const double* lane_scores) noexcept {
  const std::size_t cap = config_.pending_capacity;
  const std::size_t lanes = labels_.size();
  std::size_t& head = pend_head_[node];
  std::size_t& size = pend_size_[node];
  if (size == cap) {
    // Full: evict the oldest still-unresolved instant deterministically.
    evicted_->inc();
    if (++head == cap) head = 0;
    --size;
  }
  std::size_t slot = head + size;
  if (slot >= cap) slot -= cap;
  pend_time_[node * cap + slot] = time;
  double* row = &pend_scores_[(node * cap + slot) * lanes];
  for (std::size_t lane = 0; lane < lanes; ++lane) row[lane] = lane_scores[lane];
  ++size;
  observed_->inc();
}

// pfm-hot
void QualityTracker::tally(std::size_t node, std::size_t lane,
                           std::uint8_t code, double score) noexcept {
  const std::size_t c = cell(node, lane);
  ++cum_[c * 4 + code];
  inst_[lane].outcomes[code]->inc();

  // Sliding window: the ring evicts the oldest outcome once full.
  const std::size_t window = config_.outcome_window;
  std::uint8_t* ring = &ring_[c * window];
  std::uint64_t& len = ring_len_[c];
  const std::size_t pos = static_cast<std::size_t>(len % window);
  if (len >= window) --win_[c * 4 + ring[pos]];
  ring[pos] = code;
  ++win_[c * 4 + code];
  ++len;

  // Streaming threshold sweep: bin the score by ground-truth label.
  const bool positive = code == kTp || code == kFn;
  std::size_t bin = 0;
  if (score >= 1.0) {
    bin = config_.score_bins - 1;
  } else if (score > 0.0) {
    bin = static_cast<std::size_t>(score *
                                   static_cast<double>(config_.score_bins));
    if (bin >= config_.score_bins) bin = config_.score_bins - 1;
  }
  (positive ? inst_[lane].pos_bins[bin] : inst_[lane].neg_bins[bin])->inc();
}

// pfm-hot
void QualityTracker::resolve(std::size_t node, double now,
                             std::span<const double> failures) noexcept {
  const std::size_t cap = config_.pending_capacity;
  const std::size_t lanes = labels_.size();
  std::size_t& head = pend_head_[node];
  std::size_t& size = pend_size_[node];
  while (size > 0) {
    const double t = pend_time_[node * cap + head];
    const double w_end = t + config_.lead_time + config_.prediction_window;
    if (w_end > now) break;  // window still open — later instants too
    const double w_begin =
        config_.count_early_failures ? t : t + config_.lead_time;
    const bool label = failure_within(failures, w_begin, w_end);
    const double* row = &pend_scores_[(node * cap + head) * lanes];
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const double s = row[lane];
      if (std::isnan(s)) continue;  // lane did not score this instant
      const bool warn = s >= config_.warning_threshold;
      const std::uint8_t code =
          label ? (warn ? kTp : kFn) : (warn ? kFp : kTn);
      tally(node, lane, code, s);
    }
    resolved_->inc();
    if (++head == cap) head = 0;
    --size;
  }
}

ConfusionCounts QualityTracker::from_array(
    const std::uint64_t* c) const noexcept {
  ConfusionCounts out;
  out.true_positives = c[kTp];
  out.false_positives = c[kFp];
  out.true_negatives = c[kTn];
  out.false_negatives = c[kFn];
  return out;
}

ConfusionCounts QualityTracker::node_cumulative(std::size_t node,
                                                std::size_t lane) const {
  return from_array(&cum_[cell(node, lane) * 4]);
}

ConfusionCounts QualityTracker::node_windowed(std::size_t node,
                                              std::size_t lane) const {
  const std::uint32_t* w = &win_[cell(node, lane) * 4];
  ConfusionCounts out;
  out.true_positives = w[kTp];
  out.false_positives = w[kFp];
  out.true_negatives = w[kTn];
  out.false_negatives = w[kFn];
  return out;
}

ConfusionCounts QualityTracker::windowed_nodes(std::size_t lane,
                                               std::size_t begin,
                                               std::size_t count) const {
  ConfusionCounts out;
  const std::size_t end = std::min(begin + count, node_count_);
  for (std::size_t node = begin; node < end; ++node) {
    const ConfusionCounts c = node_windowed(node, lane);
    out.true_positives += c.true_positives;
    out.false_positives += c.false_positives;
    out.true_negatives += c.true_negatives;
    out.false_negatives += c.false_negatives;
  }
  return out;
}

ConfusionCounts QualityTracker::cumulative(std::size_t lane) const {
  ConfusionCounts out;
  for (std::size_t node = 0; node < node_count_; ++node) {
    const ConfusionCounts c = node_cumulative(node, lane);
    out.true_positives += c.true_positives;
    out.false_positives += c.false_positives;
    out.true_negatives += c.true_negatives;
    out.false_negatives += c.false_negatives;
  }
  return out;
}

ConfusionCounts QualityTracker::windowed(std::size_t lane) const {
  return windowed_nodes(lane, 0, node_count_);
}

std::uint64_t QualityTracker::pending_total() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t node = 0; node < node_count_; ++node) {
    total += pend_size_[node];
  }
  return total;
}

double QualityTracker::auc_estimate(std::size_t lane) const {
  const auto& li = inst_[lane];
  std::uint64_t positives = 0;
  std::uint64_t negatives = 0;
  for (std::size_t bin = 0; bin < config_.score_bins; ++bin) {
    positives += li.pos_bins[bin]->value();
    negatives += li.neg_bins[bin]->value();
  }
  if (positives == 0 || negatives == 0) return 0.5;
  // Sweep thresholds from high to low: each bin boundary contributes a
  // (fpr, tpr) point; trapezoidal area between consecutive points.
  double auc = 0.0;
  double prev_fpr = 0.0;
  double prev_tpr = 0.0;
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  for (std::size_t b = config_.score_bins; b-- > 0;) {
    tp += li.pos_bins[b]->value();
    fp += li.neg_bins[b]->value();
    const double tpr =
        static_cast<double>(tp) / static_cast<double>(positives);
    const double fpr =
        static_cast<double>(fp) / static_cast<double>(negatives);
    auc += (fpr - prev_fpr) * (tpr + prev_tpr) * 0.5;
    prev_fpr = fpr;
    prev_tpr = tpr;
  }
  return auc;
}

void QualityTracker::refresh_gauges() {
  for (std::size_t lane = 0; lane < labels_.size(); ++lane) {
    const ConfusionCounts w = windowed(lane);
    auto& li = inst_[lane];
    li.precision->set(w.precision());
    li.recall->set(w.recall());
    li.f_measure->set(w.f_measure());
    li.fpr->set(w.false_positive_rate());
    li.auc->set(auc_estimate(lane));
  }
  pending_gauge_->set(static_cast<double>(pending_total()));
}

}  // namespace pfm::obs
