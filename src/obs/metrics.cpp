#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pfm::obs {

namespace {
// One shard id per thread. Shard 0 is the controller; ThreadPool workers
// claim 1..k at spawn. Thread-local by design: the whole point of the
// sharded storage is that no two threads ever write the same slot.
thread_local std::size_t t_shard = 0;
}  // namespace

std::size_t thread_shard() noexcept { return t_shard; }
void set_thread_shard(std::size_t shard) noexcept { t_shard = shard; }

void HistogramSpec::validate() const {
  if (!(first_bound > 0.0)) {
    throw std::invalid_argument("HistogramSpec: first_bound > 0");
  }
  if (!(factor > 1.0)) {
    throw std::invalid_argument("HistogramSpec: factor > 1");
  }
  if (num_buckets == 0 || num_buckets > 64) {
    throw std::invalid_argument("HistogramSpec: 1 <= num_buckets <= 64");
  }
  if (!(resolution > 0.0)) {
    throw std::invalid_argument("HistogramSpec: resolution > 0");
  }
}

Histogram::Histogram(std::string name, const HistogramSpec& spec,
                     std::size_t shards, Clock clock)
    : name_(std::move(name)), spec_(spec), clock_(clock), shards_(shards) {
  spec_.validate();
  bounds_.reserve(spec_.num_buckets);
  double bound = spec_.first_bound;
  for (std::size_t i = 0; i < spec_.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= spec_.factor;
  }
  for (auto& shard : shards_) {
    shard.buckets.assign(spec_.num_buckets + 1, 0);
  }
}

void Histogram::observe(double v) noexcept {
  Shard& shard = shards_[shard_index()];
  // Non-finite observations land in the overflow bucket and contribute
  // no ticks — they must never poison the exact integer sum.
  std::size_t bucket = spec_.num_buckets;
  if (std::isfinite(v)) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    bucket = static_cast<std::size_t>(it - bounds_.begin());
    const double ticks = v > 0.0 ? v / spec_.resolution : 0.0;
    constexpr double kMaxTicks = 9.0e18;  // < 2^63, exactly representable
    shard.sum_ticks +=
        static_cast<std::uint64_t>(std::llround(std::min(ticks, kMaxTicks)));
  }
  ++shard.buckets[bucket];
  ++shard.count;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (i < shard.buckets.size()) total += shard.buckets[i];
  }
  return total;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard.count;
  return total;
}

std::uint64_t Histogram::sum_ticks() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard.sum_ticks;
  return total;
}

MetricsRegistry::MetricsRegistry(std::size_t shards)
    : shards_(shards > 0 ? shards : 1) {}

void MetricsRegistry::check_unique(const std::string& name,
                                   const char* family) const {
  const bool taken =
      (family[0] != 'c' && counters_.count(name) != 0) ||
      (family[0] != 'g' && gauges_.count(name) != 0) ||
      (family[0] != 'h' && histograms_.count(name) != 0);
  if (taken) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another "
                                "instrument family");
  }
}

Counter& MetricsRegistry::counter(const std::string& name, Clock clock) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  check_unique(name, "counter");
  auto& slot = counters_[name];
  slot.reset(new Counter(name, shards_, clock));
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Clock clock) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  check_unique(name, "gauge");
  auto& slot = gauges_[name];
  slot.reset(new Gauge(name, clock));
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const HistogramSpec& spec, Clock clock) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  check_unique(name, "histogram");
  auto& slot = histograms_[name];
  slot.reset(new Histogram(name, spec, shards_, clock));
  return *slot;
}

}  // namespace pfm::obs
