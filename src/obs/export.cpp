#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace pfm::obs {

namespace {

std::string format_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

/// Splits `pfm_x_total{kind="crash"}` into base name and label body
/// (without braces); labels empty when the name carries none.
void split_labels(const std::string& name, std::string& base,
                  std::string& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  // name.back() is '}' by convention; tolerate a missing one.
  const std::size_t end = name.back() == '}' ? name.size() - 1 : name.size();
  labels = name.substr(brace + 1, end - brace - 1);
}

std::string series(const std::string& base, const std::string& suffix,
                   const std::string& labels, const std::string& extra_label) {
  std::string out = base + suffix;
  if (labels.empty() && extra_label.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra_label.empty()) out += ',';
  out += extra_label;
  out += '}';
  return out;
}

void append_type_line(std::string& out, std::string& last_base,
                      const std::string& base, const char* type) {
  if (base == last_base) return;  // labeled variants share one TYPE line
  last_base = base;
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

}  // namespace

std::string format_double(double v) {
  if (!std::isfinite(v)) {
    return v != v ? "NaN" : (v > 0 ? "+Inf" : "-Inf");
  }
  // Integers up to 2^53 print exactly without a decimal point.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  return buf;
}

std::string prometheus_text(const MetricsRegistry& registry,
                            bool include_wall) {
  std::string out;
  std::string base;
  std::string labels;
  std::string last_base;

  for (const auto& [name, counter] : registry.counters()) {
    if (!include_wall && counter->clock() == Clock::kWall) continue;
    split_labels(name, base, labels);
    append_type_line(out, last_base, base, "counter");
    out += series(base, "", labels, "");
    out += ' ';
    out += format_u64(counter->value());
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!include_wall && gauge->clock() == Clock::kWall) continue;
    split_labels(name, base, labels);
    append_type_line(out, last_base, base, "gauge");
    out += series(base, "", labels, "");
    out += ' ';
    out += format_double(gauge->value());
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, hist] : registry.histograms()) {
    if (!include_wall && hist->clock() == Clock::kWall) continue;
    split_labels(name, base, labels);
    append_type_line(out, last_base, base, "histogram");
    std::uint64_t cumulative = 0;
    const auto& bounds = hist->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += hist->bucket_count(i);
      out += series(base, "_bucket", labels,
                    "le=\"" + format_double(bounds[i]) + "\"");
      out += ' ';
      out += format_u64(cumulative);
      out += '\n';
    }
    out += series(base, "_bucket", labels, "le=\"+Inf\"");
    out += ' ';
    out += format_u64(hist->count());
    out += '\n';
    out += series(base, "_sum", labels, "");
    out += ' ';
    out += format_double(hist->sum());
    out += '\n';
    out += series(base, "_count", labels, "");
    out += ' ';
    out += format_u64(hist->count());
    out += '\n';
  }
  return out;
}

std::string chrome_trace_json(const std::vector<Span>& spans,
                              bool include_wall) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;

  // Name the lanes so Perfetto shows "fleet", "node 3", "predictor 0"
  // instead of raw tid numbers. Emit one metadata event per track seen.
  std::vector<std::uint32_t> tracks;
  for (const Span& s : spans) {
    bool seen = false;
    for (const std::uint32_t t : tracks) {
      if (t == s.track) { seen = true; break; }
    }
    if (!seen) tracks.push_back(s.track);
  }
  for (const std::uint32_t t : tracks) {
    std::string label;
    if (t == kFleetTrack) {
      label = "fleet";
    } else if (t >= 1000000) {
      label = "predictor " + format_u64(t - 1000000);
    } else {
      label = "node " + format_u64(t - 1);
    }
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += format_u64(t);
    out += ",\"args\":{\"name\":\"";
    append_json_escaped(out, label);
    out += "\"}}";
  }

  for (const Span& s : spans) {
    if (!first) out += ',';
    first = false;
    // 1 sim second = 1e6 trace µs; durations clamp at 0 for instants.
    const double ts_us = s.sim_begin * 1e6;
    const double dur_us =
        s.sim_end > s.sim_begin ? (s.sim_end - s.sim_begin) * 1e6 : 0.0;
    out += "{\"name\":\"";
    out += to_string(s.kind);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += format_double(ts_us);
    out += ",\"dur\":";
    out += format_double(dur_us);
    out += ",\"pid\":1,\"tid\":";
    out += format_u64(s.track);
    out += ",\"args\":{\"sub\":";
    out += format_u64(s.sub);
    out += ",\"arg\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, s.arg);
    out += buf;
    if (include_wall && s.wall_seconds > 0.0) {
      out += ",\"wall_us\":";
      out += format_double(s.wall_seconds * 1e6);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string chrome_trace_json(const TraceRecorder& trace, bool include_wall) {
  return chrome_trace_json(trace.sorted_spans(), include_wall);
}

std::string metrics_json_line(const MetricsRegistry& registry,
                              bool include_wall) {
  std::string out = "{";
  bool first = true;
  const auto append_key = [&](const std::string& key) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, key);
    out += "\":";
  };
  for (const auto& [name, counter] : registry.counters()) {
    if (!include_wall && counter->clock() == Clock::kWall) continue;
    append_key(name);
    out += format_u64(counter->value());
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!include_wall && gauge->clock() == Clock::kWall) continue;
    append_key(name);
    out += format_double(gauge->value());
  }
  for (const auto& [name, hist] : registry.histograms()) {
    if (!include_wall && hist->clock() == Clock::kWall) continue;
    append_key(name + "_count");
    out += format_u64(hist->count());
    append_key(name + "_sum");
    out += format_double(hist->sum());
  }
  out += '}';
  return out;
}

}  // namespace pfm::obs
