#pragma once

// Deterministic metrics registry for the PFM runtime (DESIGN.md §8).
//
// The Fig. 11 blueprint calls for *adaptive monitoring*: the MEA loop
// itself must be observable. This registry provides the three instrument
// families every monitoring pipeline needs — counters, gauges and
// fixed-bucket log-scale histograms — without ever putting a lock or an
// atomic on the hot MEA path:
//
//  - storage is *sharded per thread*: every instrument owns one padded
//    slot (or bucket array) per shard, a thread writes only its own
//    shard (shard 0 is the controller, shard k is pool worker k), and
//    readers merge the shards on scrape. The ThreadPool handshake that
//    ends every parallel section provides the happens-before edge a
//    scrape needs, so the scheme is TSan-clean with zero hot-path
//    synchronization;
//  - every value that can feed a result is *integral*: counters are
//    u64, histogram bucket counts are u64, and the histogram running
//    sum is kept in integer ticks of a per-histogram resolution —
//    integer addition commutes exactly, so merged values are
//    bit-identical no matter how observations were distributed over
//    shards (a double sum would pick up shard-order rounding);
//  - instruments carry a Clock tag: kSim values are pure functions of
//    (seed, plan) and take part in the bit-identity guarantee; kWall
//    values (latency telemetry) are honest about being wall time and
//    can be excluded from deterministic exports.
//
// Registration (counter()/gauge()/histogram()) is a controller-thread
// operation done before parallel sections run; the returned handles are
// stable for the registry's lifetime and are the only thing the hot
// path touches.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pfm::obs {

/// Shard index of the calling thread: 0 for the controller (and any
/// thread that never set one), k for pool worker k. Thread-local, set
/// once at worker spawn — never written on a hot path.
std::size_t thread_shard() noexcept;
void set_thread_shard(std::size_t shard) noexcept;

/// Determinism tag: is the instrument's value a pure function of
/// (seed, plan) — and therefore part of the bit-identity contract — or
/// wall-clock telemetry that varies run to run?
enum class Clock : std::uint8_t { kSim = 0, kWall = 1 };

namespace detail {
/// One per-shard accumulator, padded to its own cache line so two
/// threads bumping adjacent shards never false-share.
struct alignas(64) ShardSlot {
  std::uint64_t value = 0;
};
}  // namespace detail

/// Monotonic event counter. inc() writes the calling thread's shard;
/// value() merges. Handles are created by MetricsRegistry only.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    slots_[shard_index()].value += n;
  }

  /// Merged total. Call only while no parallel section is in flight.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : slots_) total += s.value;
    return total;
  }

  const std::string& name() const noexcept { return name_; }
  Clock clock() const noexcept { return clock_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::size_t shards, Clock clock)
      : name_(std::move(name)), clock_(clock), slots_(shards) {}

  std::size_t shard_index() const noexcept {
    const std::size_t s = thread_shard();
    return s < slots_.size() ? s : 0;
  }

  std::string name_;
  Clock clock_;
  std::vector<detail::ShardSlot> slots_;
};

/// Point-in-time value. Gauges are controller-state (fleet size, open
/// breakers, quarantined nodes): set() and value() are controller-thread
/// operations, so a single unsharded slot suffices.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

  const std::string& name() const noexcept { return name_; }
  Clock clock() const noexcept { return clock_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, Clock clock) : name_(std::move(name)), clock_(clock) {}

  std::string name_;
  Clock clock_;
  double value_ = 0.0;
};

/// Geometry of a fixed-bucket log-scale histogram: finite bucket i
/// covers values <= first_bound * factor^i, plus an implicit +Inf
/// bucket. `resolution` is the tick size of the exact integer running
/// sum (1 ns for wall latencies, 1 µs for sim-time durations/scores).
struct HistogramSpec {
  double first_bound = 1e-6;
  double factor = 4.0;
  std::size_t num_buckets = 12;
  double resolution = 1e-9;

  void validate() const;
};

/// Fixed-bucket log-scale histogram, sharded like Counter. observe()
/// touches only the calling thread's shard; readers merge.
class Histogram {
 public:
  void observe(double v) noexcept;

  /// Merged count of finite bucket i (i == num_buckets is +Inf).
  std::uint64_t bucket_count(std::size_t i) const noexcept;
  std::uint64_t count() const noexcept;
  /// Exact merged sum in integer ticks of spec().resolution.
  std::uint64_t sum_ticks() const noexcept;
  /// sum_ticks() scaled back to the observed unit.
  double sum() const noexcept {
    return static_cast<double>(sum_ticks()) * spec_.resolution;
  }

  /// Upper bounds of the finite buckets, ascending.
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  const HistogramSpec& spec() const noexcept { return spec_; }
  const std::string& name() const noexcept { return name_; }
  Clock clock() const noexcept { return clock_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, const HistogramSpec& spec, std::size_t shards,
            Clock clock);

  /// Per-shard state: one count per bucket (finite + overflow), the
  /// tick sum and the observation count, padded against false sharing.
  struct alignas(64) Shard {
    std::vector<std::uint64_t> buckets;
    std::uint64_t sum_ticks = 0;
    std::uint64_t count = 0;
  };

  std::size_t shard_index() const noexcept {
    const std::size_t s = thread_shard();
    return s < shards_.size() ? s : 0;
  }

  std::string name_;
  HistogramSpec spec_;
  Clock clock_;
  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// Owns every instrument of one observability domain. Lookup is
/// find-or-create by name; re-requesting a name returns the same handle
/// and a name registered under a different instrument family throws.
/// Names follow Prometheus conventions and may carry a label suffix
/// (`pfm_injected_faults_total{kind="sample_drop"}`); iteration is in
/// name order (std::map), so exports are deterministic by construction.
class MetricsRegistry {
 public:
  /// `shards` must cover every thread that will touch a handle: the
  /// controller plus all pool workers (FleetController validates this
  /// against its pool).
  explicit MetricsRegistry(std::size_t shards = 1);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  std::size_t shards() const noexcept { return shards_; }

  Counter& counter(const std::string& name, Clock clock = Clock::kSim);
  Gauge& gauge(const std::string& name, Clock clock = Clock::kSim);
  Histogram& histogram(const std::string& name, const HistogramSpec& spec,
                       Clock clock = Clock::kWall);

  /// Name-ordered visitation for the exporters.
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

 private:
  void check_unique(const std::string& name, const char* family) const;

  std::size_t shards_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace pfm::obs
