#include "obs/flight.hpp"

#include <algorithm>
#include <tuple>

#include "obs/export.hpp"

namespace pfm::obs {

const char* to_string(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kScore: return "score";
    case FlightEventKind::kWarning: return "warning";
    case FlightEventKind::kAction: return "action";
    case FlightEventKind::kActionRetry: return "action_retry";
    case FlightEventKind::kActionAbandoned: return "action_abandoned";
    case FlightEventKind::kInjectedFault: return "injected_fault";
    case FlightEventKind::kBreakerTrip: return "breaker_trip";
    case FlightEventKind::kBreakerClose: return "breaker_close";
    case FlightEventKind::kQuarantine: return "quarantine";
    case FlightEventKind::kMemberJoin: return "member_join";
    case FlightEventKind::kMemberLeave: return "member_leave";
    case FlightEventKind::kMemberDrain: return "member_drain";
    case FlightEventKind::kMemberRestart: return "member_restart";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {}

void FlightRecorder::ensure_nodes(std::size_t count) {
  if (!enabled() || count <= nodes_.size()) return;
  nodes_.resize(count);
  for (auto& scope : nodes_) {
    if (scope.ring.size() < capacity_) scope.ring.resize(capacity_);
  }
}

void FlightRecorder::ensure_lanes(std::size_t count, std::size_t stride) {
  if (!enabled()) return;
  lane_stride_ = stride;
  if (count <= lanes_.size()) return;
  lanes_.resize(count);
  for (auto& scope : lanes_) {
    if (scope.ring.size() < capacity_) scope.ring.resize(capacity_);
  }
}

// pfm-hot
void FlightRecorder::record(Scope& scope, const FlightEvent& event) noexcept {
  scope.ring[static_cast<std::size_t>(scope.total % capacity_)] = event;
  ++scope.total;
}

// pfm-hot
void FlightRecorder::record_node(std::size_t node,
                                 const FlightEvent& event) noexcept {
  if (node >= nodes_.size()) return;
  record(nodes_[node], event);
}

// pfm-hot
void FlightRecorder::record_lane(std::size_t lane,
                                 const FlightEvent& event) noexcept {
  if (lane >= lanes_.size()) return;
  record(lanes_[lane], event);
}

// pfm-cold
void FlightRecorder::dump(Scope& scope, const char* family, std::size_t id,
                          const char* reason, double time) {
  const std::uint64_t retained =
      std::min<std::uint64_t>(scope.total, capacity_);
  const std::uint64_t dropped = scope.total - retained;
  std::string out = "{\"postmortem\":\"";
  out += family;
  out += "\",\"id\":" + std::to_string(id);
  if (family[0] == 'p' && lane_stride_ > 0) {
    out += ",\"shard\":" + std::to_string(id / lane_stride_);
    out += ",\"predictor\":" + std::to_string(id % lane_stride_);
  }
  out += ",\"reason\":\"";
  out += reason;
  out += "\",\"time\":" + format_double(time);
  out += ",\"events\":" + std::to_string(retained);
  out += ",\"dropped\":" + std::to_string(dropped);
  out += "}\n";
  const std::uint64_t oldest = scope.total >= capacity_
                                   ? scope.total % capacity_
                                   : 0;
  for (std::uint64_t i = 0; i < retained; ++i) {
    const FlightEvent& e =
        scope.ring[static_cast<std::size_t>((oldest + i) % capacity_)];
    out += "{\"t\":" + format_double(e.time);
    out += ",\"kind\":\"";
    out += to_string(e.kind);
    out += "\",\"sub\":" + std::to_string(e.sub);
    out += ",\"arg\":" + std::to_string(e.arg);
    out += ",\"value\":" + format_double(e.value);
    out += "}\n";
  }
  scope.dumps.push_back(std::move(out));
  scope.dump_times.push_back(time);
}

// pfm-cold
void FlightRecorder::dump_node(std::size_t node, const char* reason,
                               double time) {
  if (node >= nodes_.size()) return;
  dump(nodes_[node], "node", node, reason, time);
}

// pfm-cold
void FlightRecorder::dump_lane(std::size_t lane, const char* reason,
                               double time) {
  if (lane >= lanes_.size()) return;
  dump(lanes_[lane], "predictor", lane, reason, time);
}

std::size_t FlightRecorder::dump_count() const noexcept {
  std::size_t count = 0;
  for (const auto& scope : nodes_) count += scope.dumps.size();
  for (const auto& scope : lanes_) count += scope.dumps.size();
  return count;
}

std::string FlightRecorder::post_mortems_text() const {
  // (time, family, id, seq) sort key — family 0 = node, 1 = predictor.
  struct Key {
    double time;
    int family;
    std::size_t id;
    std::size_t seq;
    const std::string* text;
  };
  std::vector<Key> keys;
  keys.reserve(dump_count());
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const auto& scope = nodes_[id];
    for (std::size_t seq = 0; seq < scope.dumps.size(); ++seq) {
      keys.push_back({scope.dump_times[seq], 0, id, seq, &scope.dumps[seq]});
    }
  }
  for (std::size_t id = 0; id < lanes_.size(); ++id) {
    const auto& scope = lanes_[id];
    for (std::size_t seq = 0; seq < scope.dumps.size(); ++seq) {
      keys.push_back({scope.dump_times[seq], 1, id, seq, &scope.dumps[seq]});
    }
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    return std::tie(a.time, a.family, a.id, a.seq) <
           std::tie(b.time, b.family, b.id, b.seq);
  });
  std::string out;
  for (const auto& key : keys) out += *key.text;
  return out;
}

void FlightRecorder::clear_dumps() {
  for (auto& scope : nodes_) {
    scope.dumps.clear();
    scope.dump_times.clear();
  }
  for (auto& scope : lanes_) {
    scope.dumps.clear();
    scope.dump_times.clear();
  }
}

}  // namespace pfm::obs
