#pragma once

// MEA-stage tracing (DESIGN.md §8). The TraceRecorder collects spans for
// every stage of the control loop — Monitor/Evaluate/Act, per-predictor
// score_batch calls, action retries, circuit-breaker transitions,
// quarantines and injected faults — into per-thread ring buffers, so
// recording from inside a parallel section costs one branch and one
// ring write, with no synchronization.
//
// Determinism contract: a span's identity is its *sim-time* content
// (kind, track, sub, sim_begin, sim_end, arg) — all pure functions of
// (seed, plan). The optional wall duration is honest steady-clock
// telemetry and is excluded from the deterministic sort key and from
// deterministic exports. Which shard a span lands in depends on thread
// scheduling, so sorted_spans() orders by the sim-time key; while no
// spans were dropped, the sorted sequence is bit-identical across
// thread counts.
//
// Tracks are deterministic lanes, not thread ids: the fleet controller
// records on track 0, node i on track node_track(i), predictor p on
// track predictor_track(p). The Chrome-trace exporter maps tracks to
// Perfetto threads, so a trace reads as "one lane per node/predictor"
// no matter how many pool threads ran it.
//
// Off mode: a null TraceRecorder* (or capacity 0) short-circuits every
// helper before any clock is read; compiling with
// -DPFM_OBS_DISABLE_TRACING removes the record calls entirely
// (cmake -DPFM_OBS_TRACING=OFF).

#include <chrono>
#include <cstdint>
#include <vector>

namespace pfm::obs {

/// What a span measures. Values are part of the deterministic sort key;
/// append new kinds at the end.
enum class SpanKind : std::uint8_t {
  kMonitorStage = 0,   ///< fleet Monitor stage of one round
  kEvaluateStage = 1,  ///< fleet Evaluate stage of one round
  kActStage = 2,       ///< fleet Act stage of one round
  kNodeStep = 3,       ///< one node advancing one evaluation interval
  kScoreBatch = 4,     ///< one predictor scoring the fleet
  kEvaluation = 5,     ///< single-system MeaController evaluation
  kWarning = 6,        ///< combined score crossed the warning threshold
  kActionExecute = 7,  ///< countermeasure execution attempt (sub = attempt)
  kActionRetry = 8,    ///< re-attempt after a failed execution try
  kBreakerTrip = 9,    ///< predictor breaker opened (or probe failed)
  kBreakerClose = 10,  ///< breaker closed after a successful probe
  kQuarantine = 11,    ///< node quarantined
  kInjectedFault = 12, ///< fault-injection wrapper fired
  kMemberJoin = 13,    ///< node joined the fleet (sub = incarnation)
  kMemberLeave = 14,   ///< node left (arg: 0 leave / 1 drain / 2 restart)
  kMemberHandoff = 15, ///< warm state handoff to a new shard (arg = shard)
  kScaleUp = 16,       ///< elasticity policy scale-up (sub = count)
  kDrainNode = 17,     ///< elasticity policy drain decision
};

const char* to_string(SpanKind kind) noexcept;

/// Deterministic track (Perfetto lane) numbering.
inline constexpr std::uint32_t kFleetTrack = 0;
inline constexpr std::uint32_t node_track(std::size_t node) noexcept {
  return static_cast<std::uint32_t>(1 + node);
}
inline constexpr std::uint32_t predictor_track(std::size_t p) noexcept {
  return static_cast<std::uint32_t>(1000000 + p);
}
/// Stage-span lane of shard `s` of the event-driven fleet runtime. A
/// single-shard fleet records its stage spans on kFleetTrack instead, so
/// its traces stay byte-identical to the lockstep loop's.
inline constexpr std::uint32_t shard_track(std::size_t s) noexcept {
  return static_cast<std::uint32_t>(2000000 + s);
}

/// One trace span. Instant events have sim_begin == sim_end. `sub`
/// breaks ties deterministically inside one (sim_begin, track, kind)
/// group (e.g. the retry attempt number); `arg` is a kind-specific
/// payload (action kind, item count, fault code, score in micro-units).
struct Span {
  double sim_begin = 0.0;
  double sim_end = 0.0;
  std::uint32_t track = 0;
  SpanKind kind = SpanKind::kMonitorStage;
  std::uint32_t sub = 0;
  std::int64_t arg = 0;
  double wall_seconds = 0.0;  ///< steady-clock duration; 0 = not measured
};

// Re-declared here so trace.hpp stands alone; defined in metrics.cpp.
std::size_t thread_shard() noexcept;

/// Per-thread ring buffers of spans. record() writes the calling
/// thread's ring; readers run between parallel sections (the pool
/// handshake publishes the writes). When a ring is full the oldest span
/// is overwritten and dropped() grows — bit-identity across thread
/// counts holds only while dropped() == 0, so size the capacity for the
/// run (or accept a truncated trace in long benches).
class TraceRecorder {
 public:
  TraceRecorder(std::size_t shards, std::size_t capacity_per_shard);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const noexcept { return capacity_ > 0; }
  std::size_t capacity_per_shard() const noexcept { return capacity_; }

  void record(const Span& span) noexcept;

  std::uint64_t recorded() const noexcept;
  std::uint64_t dropped() const noexcept;

  /// Every retained span, ordered by the deterministic sim-time key
  /// (sim_begin, track, kind, sub, sim_end, arg). Call only while no
  /// parallel section is in flight.
  std::vector<Span> sorted_spans() const;

  void clear() noexcept;

 private:
  struct alignas(64) Ring {
    std::vector<Span> spans;   // grows to capacity, then wraps
    std::size_t next = 0;      // overwrite cursor once full
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
  };

  std::size_t shard_index() const noexcept {
    const std::size_t s = thread_shard();
    return s < rings_.size() ? s : 0;
  }

  std::size_t capacity_;
  std::vector<Ring> rings_;
};

/// Records an instant event (sim_begin == sim_end, no wall time).
inline void record_instant(TraceRecorder* rec, SpanKind kind,
                           std::uint32_t track, double sim_time,
                           std::uint32_t sub = 0, std::int64_t arg = 0) {
#ifndef PFM_OBS_DISABLE_TRACING
  if (rec == nullptr || !rec->enabled()) return;
  rec->record(Span{sim_time, sim_time, track, kind, sub, arg, 0.0});
#else
  (void)rec; (void)kind; (void)track; (void)sim_time; (void)sub; (void)arg;
#endif
}

/// RAII span: captures the wall clock on construction, records on
/// destruction. The sim interval is set explicitly — sim_end defaults
/// to sim_begin (an instant event with a wall duration attached).
/// A null/disabled recorder makes the whole object a no-op: no clock
/// is read and nothing is recorded.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* rec, SpanKind kind, std::uint32_t track,
             double sim_begin, std::uint32_t sub = 0, std::int64_t arg = 0)
#ifndef PFM_OBS_DISABLE_TRACING
      : rec_(rec != nullptr && rec->enabled() ? rec : nullptr) {
    if (rec_ == nullptr) return;
    span_.sim_begin = sim_begin;
    span_.sim_end = sim_begin;
    span_.track = track;
    span_.kind = kind;
    span_.sub = sub;
    span_.arg = arg;
    start_ = std::chrono::steady_clock::now();
  }
#else
  {
    (void)rec; (void)kind; (void)track; (void)sim_begin; (void)sub; (void)arg;
  }
#endif

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_sim_end(double sim_end) noexcept {
#ifndef PFM_OBS_DISABLE_TRACING
    if (rec_ != nullptr) span_.sim_end = sim_end;
#else
    (void)sim_end;
#endif
  }

  void set_arg(std::int64_t arg) noexcept {
#ifndef PFM_OBS_DISABLE_TRACING
    if (rec_ != nullptr) span_.arg = arg;
#else
    (void)arg;
#endif
  }

  /// Wall seconds elapsed so far (0 when disabled) — lets callers feed
  /// the same measurement into a latency histogram.
  double elapsed_wall() const noexcept {
#ifndef PFM_OBS_DISABLE_TRACING
    if (rec_ == nullptr) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
#else
    return 0.0;
#endif
  }

  ~ScopedSpan() {
#ifndef PFM_OBS_DISABLE_TRACING
    if (rec_ == nullptr) return;
    span_.wall_seconds = elapsed_wall();
    rec_->record(span_);
#endif
  }

 private:
#ifndef PFM_OBS_DISABLE_TRACING
  TraceRecorder* rec_ = nullptr;
  Span span_;
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace pfm::obs
