#pragma once

// Exporters for the observability subsystem (DESIGN.md §8):
//
//  - prometheus_text(): Prometheus text-exposition format, the scrape
//    surface. Instrument names may embed a label suffix
//    (`pfm_x_total{kind="crash"}`); histograms expand into the
//    conventional _bucket/_sum/_count series.
//  - chrome_trace_json(): Chrome trace-event JSON loadable in Perfetto
//    (ui.perfetto.dev → "Open trace file"). Sim time maps to the trace
//    clock (1 sim second = 1s of trace time); tracks become named
//    threads, so every node and predictor gets its own lane.
//  - metrics_json_line(): one flat JSON object per scrape, compatible
//    with the `{"bench":...}` JSON-line scraping used by tools/.
//
// Every exporter takes include_wall: with include_wall = false, wall-
// clock instruments (Clock::kWall) and span wall durations are omitted
// and the output is a pure function of (seed, plan) — this is the form
// the bit-identity tests compare across thread counts.

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pfm::obs {

/// Shortest round-trippable decimal for v (integers print bare). Shared
/// by the exporters so goldens do not depend on iostream locale state.
std::string format_double(double v);

std::string prometheus_text(const MetricsRegistry& registry,
                            bool include_wall = true);

std::string chrome_trace_json(const std::vector<Span>& spans,
                              bool include_wall = true);

/// Convenience: sorted_spans() of `trace`, exported.
std::string chrome_trace_json(const TraceRecorder& trace,
                              bool include_wall = true);

/// Single-line `{"name":value,...}` dump; histograms contribute
/// `<name>_count` and `<name>_sum` entries.
std::string metrics_json_line(const MetricsRegistry& registry,
                              bool include_wall = true);

}  // namespace pfm::obs
