#include "obs/trace.hpp"

#include <algorithm>
#include <tuple>

namespace pfm::obs {

const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kMonitorStage: return "monitor_stage";
    case SpanKind::kEvaluateStage: return "evaluate_stage";
    case SpanKind::kActStage: return "act_stage";
    case SpanKind::kNodeStep: return "node_step";
    case SpanKind::kScoreBatch: return "score_batch";
    case SpanKind::kEvaluation: return "evaluation";
    case SpanKind::kWarning: return "warning";
    case SpanKind::kActionExecute: return "action_execute";
    case SpanKind::kActionRetry: return "action_retry";
    case SpanKind::kBreakerTrip: return "breaker_trip";
    case SpanKind::kBreakerClose: return "breaker_close";
    case SpanKind::kQuarantine: return "quarantine";
    case SpanKind::kInjectedFault: return "injected_fault";
    case SpanKind::kMemberJoin: return "member_join";
    case SpanKind::kMemberLeave: return "member_leave";
    case SpanKind::kMemberHandoff: return "member_handoff";
    case SpanKind::kScaleUp: return "scale_up";
    case SpanKind::kDrainNode: return "drain_node";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t shards, std::size_t capacity_per_shard)
    : capacity_(capacity_per_shard), rings_(shards > 0 ? shards : 1) {
  if (capacity_ > 0) {
    for (auto& ring : rings_) ring.spans.reserve(capacity_);
  }
}

void TraceRecorder::record(const Span& span) noexcept {
  if (capacity_ == 0) return;
  Ring& ring = rings_[shard_index()];
  ++ring.recorded;
  if (ring.spans.size() < capacity_) {
    ring.spans.push_back(span);
    return;
  }
  ring.spans[ring.next] = span;
  ring.next = (ring.next + 1) % capacity_;
  ++ring.dropped;
}

std::uint64_t TraceRecorder::recorded() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring.recorded;
  return total;
}

std::uint64_t TraceRecorder::dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring.dropped;
  return total;
}

std::vector<Span> TraceRecorder::sorted_spans() const {
  std::vector<Span> out;
  std::size_t total = 0;
  for (const auto& ring : rings_) total += ring.spans.size();
  out.reserve(total);
  for (const auto& ring : rings_) {
    out.insert(out.end(), ring.spans.begin(), ring.spans.end());
  }
  // Deterministic sim-time key; wall_seconds deliberately excluded. The
  // key is a total order over distinct sim-content, so the sorted
  // sequence does not depend on which shard a span landed in.
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return std::make_tuple(a.sim_begin, a.track, static_cast<int>(a.kind),
                           a.sub, a.sim_end, a.arg) <
           std::make_tuple(b.sim_begin, b.track, static_cast<int>(b.kind),
                           b.sub, b.sim_end, b.arg);
  });
  return out;
}

void TraceRecorder::clear() noexcept {
  for (auto& ring : rings_) {
    ring.spans.clear();
    ring.next = 0;
    ring.recorded = 0;
    ring.dropped = 0;
  }
}

}  // namespace pfm::obs
