#pragma once

// Per-node flight recorder (DESIGN.md §12). A bounded ring of the most
// recent MEA events per deterministic scope — one ring per node (scores,
// warnings, countermeasure attempts, injected faults, membership
// transitions) and one per predictor lane (circuit-breaker activity).
// When something terminal happens to a scope — quarantine, breaker trip,
// drain — the ring is rendered into a JSON-line post-mortem capturing
// the last N events that led up to it, like an aircraft flight recorder.
//
// Ownership mirrors the rest of the obs layer: a scope's ring is written
// only by the thread currently stepping that node/shard (controller
// under lockstep, shard thread under the event-driven scheduler), dumps
// are rendered by the same owning thread and stored on the scope, and
// post_mortems_text() concatenates them on the controller between
// parallel sections, ordered by the deterministic (time, scope, seq)
// key. Everything recorded is sim-time content — a pure function of
// (seed, fault plan, membership plan) — so dumps are byte-identical
// across thread counts.
//
// capacity 0 disables the recorder; every record_* degrades to a branch
// through the same pointer-or-null idiom the tracer uses.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pfm::obs {

/// What a flight event records. Values are stable export identifiers;
/// append new kinds at the end.
enum class FlightEventKind : std::uint8_t {
  kScore = 0,           ///< combined score at one evaluation (value)
  kWarning = 1,         ///< score crossed the warning threshold
  kAction = 2,          ///< countermeasure executed (arg = kind)
  kActionRetry = 3,     ///< re-attempt after a failed try (sub = attempt)
  kActionAbandoned = 4, ///< retries exhausted (arg = kind)
  kInjectedFault = 5,   ///< injection wrapper fired (arg = fault code)
  kBreakerTrip = 6,     ///< predictor breaker opened
  kBreakerClose = 7,    ///< breaker closed after a probe
  kQuarantine = 8,      ///< node quarantined
  kMemberJoin = 9,      ///< node joined (sub = incarnation)
  kMemberLeave = 10,    ///< node left the fleet
  kMemberDrain = 11,    ///< node drained (graceful leave)
  kMemberRestart = 12,  ///< rolling restart (sub = new incarnation)
};

const char* to_string(FlightEventKind kind) noexcept;

/// One ring entry. `sub` and `arg` are kind-specific (attempt number,
/// action kind, fault code); `value` carries the score when one exists.
struct FlightEvent {
  double time = 0.0;
  FlightEventKind kind = FlightEventKind::kScore;
  std::uint32_t sub = 0;
  std::int64_t arg = 0;
  double value = 0.0;
};

class FlightRecorder {
 public:
  /// `capacity` is the ring size per scope; 0 disables everything.
  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const noexcept { return capacity_ > 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Controller-thread sizing (never shrinks). Lane scopes are indexed
  /// shard * stride + predictor; a lockstep fleet registers stride =
  /// predictor count with a single shard 0.
  void ensure_nodes(std::size_t count);
  void ensure_lanes(std::size_t count, std::size_t stride);

  std::size_t node_scopes() const noexcept { return nodes_.size(); }
  std::size_t lane_scopes() const noexcept { return lanes_.size(); }

  /// Hot path: bounded ring write, owning thread of the scope only.
  void record_node(std::size_t node, const FlightEvent& event) noexcept;
  void record_lane(std::size_t lane, const FlightEvent& event) noexcept;

  /// Renders the scope's ring into a stored JSON-line post-mortem
  /// (header line + one line per retained event, oldest first). Called
  /// by the scope's owning thread at the moment of the incident.
  void dump_node(std::size_t node, const char* reason, double time);
  void dump_lane(std::size_t lane, const char* reason, double time);

  /// Controller-thread reads between parallel sections.
  std::size_t dump_count() const noexcept;
  /// Every stored post-mortem, ordered by (time, scope family, scope id,
  /// per-scope sequence) — deterministic across thread counts.
  std::string post_mortems_text() const;
  void clear_dumps();

 private:
  struct Scope {
    std::vector<FlightEvent> ring;  // capacity entries once armed
    std::uint64_t total = 0;        // events ever recorded
    std::vector<std::string> dumps;
    std::vector<double> dump_times;
  };

  void record(Scope& scope, const FlightEvent& event) noexcept;
  void dump(Scope& scope, const char* family, std::size_t id,
            const char* reason, double time);

  std::size_t capacity_;
  std::size_t lane_stride_ = 0;
  std::vector<Scope> nodes_;
  std::vector<Scope> lanes_;
};

}  // namespace pfm::obs
