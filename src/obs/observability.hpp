#pragma once

// The Observability hub: one MetricsRegistry plus one TraceRecorder,
// sized together so every thread of a FleetController (controller +
// pool workers) has its own shard in both. Components take a plain
// `Observability*` — nullptr means "not observed" and every
// instrumentation site degrades to a branch.

#include <cstddef>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pfm::obs {

struct ObservabilityConfig {
  /// Shards = 1 (controller) + max pool workers that will record.
  std::size_t shards = 1;
  /// Span ring capacity per shard; 0 disables tracing entirely (metrics
  /// stay live).
  std::size_t trace_capacity = 0;
  /// Flight-recorder ring capacity per scope; 0 disables post-mortems.
  std::size_t flight_capacity = 0;
};

class Observability {
 public:
  explicit Observability(const ObservabilityConfig& config = {})
      : metrics_(config.shards),
        trace_(config.shards, config.trace_capacity),
        flight_(config.flight_capacity) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  TraceRecorder& trace() noexcept { return trace_; }
  const TraceRecorder& trace() const noexcept { return trace_; }

  /// The recorder to hand to record helpers: null when tracing is off,
  /// so ScopedSpan/record_instant short-circuit without touching it.
  TraceRecorder* tracer() noexcept {
    return trace_.enabled() ? &trace_ : nullptr;
  }

  /// The flight recorder, null when post-mortems are off — same
  /// pointer-or-null idiom as tracer().
  FlightRecorder* flight() noexcept {
    return flight_.enabled() ? &flight_ : nullptr;
  }
  const FlightRecorder* flight() const noexcept {
    return flight_.enabled() ? &flight_ : nullptr;
  }

  std::size_t shards() const noexcept { return metrics_.shards(); }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
  FlightRecorder flight_;
};

}  // namespace pfm::obs
