#pragma once

// Online prediction-quality tracking (DESIGN.md §12).
//
// The offline evaluation path (`prediction/evaluate`, `eval/metrics`)
// scores a finished run; this tracker computes the same Sect. 3.3
// contingency outcomes *while the fleet is running*, so the quality
// scoreboard (precision / recall / F-measure / fpr / AUC) is live
// telemetry instead of a post-hoc report.
//
// Matching rule (Sect. 3.3, mirroring MonitoringDataset::failure_within
// and prediction::score_on_grid exactly): an evaluation at sim time t
// predicts the window
//
//     [w_begin, w_end)  with  w_end   = t + lead_time + prediction_window
//                             w_begin = t                 (early counted)
//                             w_begin = t + lead_time     (otherwise)
//
// and its ground-truth label is "failure" iff the node records a failure
// inside that half-open window. Since the window closes lead_time +
// prediction_window *after* the evaluation, an instant is held pending
// and resolved once the node's own clock passes w_end; instants whose
// window never closes before the horizon stay pending forever — exactly
// the instants score_on_grid excludes from the offline grid.
//
// Concurrency / determinism: per-(node, lane) tallies and the per-node
// pending ring are owned by whichever thread is stepping the node (the
// controller under the lockstep scheduler, the shard thread under the
// event-driven one) — the same ownership discipline as SystemStats.
// Shared per-lane totals (outcome counters, score-distribution bins) go
// through the per-thread-sharded Counter, whose integer merge is exact,
// so every exported value is a pure function of (seed, fault plan,
// membership plan) — bit-identical across thread counts.
//
// Lanes: one per registered predictor plus a final "combined" lane for
// the max-reduced score the MEA loop actually thresholds. A lane score
// of NaN at an instant means "this predictor did not score here" (dead
// breaker, sanitized output) and resolves to no outcome for that lane.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pfm::obs {

/// Geometry and sizing of the online tracker. Window fields must match
/// the MEA configuration driving the fleet or the online counts will
/// diverge from the offline report.
struct QualityConfig {
  double lead_time = 300.0;          ///< Δt_l (seconds of sim time)
  double prediction_window = 300.0;  ///< Δt_p
  /// Count a failure earlier than lead_time ahead as a true positive
  /// (EvalOptions::count_early_failures semantics).
  bool count_early_failures = true;
  /// Warning iff score >= threshold — the MEA decision rule.
  double warning_threshold = 0.6;
  /// Pending-instant ring capacity per node; the oldest unresolved
  /// instant is evicted (and counted) when a node overflows it.
  std::size_t pending_capacity = 64;
  /// Sliding window (in resolved instants per node and lane) behind the
  /// windowed() tallies that feed the gauges and the Eq. 8 estimate.
  std::size_t outcome_window = 128;
  /// Fixed score-distribution bins over [0,1] per lane and label — the
  /// streaming threshold sweep behind the online PR curve / AUC.
  std::size_t score_bins = 20;

  void validate() const;  ///< throws std::invalid_argument
};

/// 2x2 contingency tallies with the same degenerate-case conventions as
/// eval::ContingencyTable: precision is 1 with no warnings, recall is 1
/// with no failures, fpr is 0 with no negatives.
struct ConfusionCounts {
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t true_negatives = 0;
  std::uint64_t false_negatives = 0;

  std::uint64_t total() const noexcept {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }

  double precision() const noexcept;
  double recall() const noexcept;
  double false_positive_rate() const noexcept;
  double f_measure() const noexcept;
};

/// The online confusion tracker. Registration and aggregation are
/// controller-thread operations between parallel sections; observe()
/// and resolve() are the hot path and are alloc/throw/lock-free.
class QualityTracker {
 public:
  /// `registry` receives the per-lane instruments; it must outlive the
  /// tracker. Throws std::invalid_argument on a bad config or null
  /// registry.
  QualityTracker(const QualityConfig& config, MetricsRegistry* registry);

  QualityTracker(const QualityTracker&) = delete;
  QualityTracker& operator=(const QualityTracker&) = delete;

  /// Declares the predictor lanes (one label per predictor, in scoring
  /// order) and registers their instruments; a trailing "combined" lane
  /// is always appended. Duplicate labels get a "#<index>" suffix so
  /// instrument names stay unique. Calling again with the same labels is
  /// a no-op; changing the lane set clears all per-node state (pending
  /// instants are counted as evicted).
  void set_predictors(std::span<const std::string> labels);

  /// Grows per-node state to cover nodes [0, count). Never shrinks.
  void ensure_nodes(std::size_t count);

  /// Restart semantics: drops the node's pending instants (counted as
  /// evicted) and clears its sliding window; cumulative tallies persist
  /// across incarnations like the retired-stats ledger does.
  void reset_node(std::size_t node);

  /// Lane count including the trailing combined lane (0 before
  /// set_predictors).
  std::size_t lanes() const noexcept { return labels_.size(); }
  std::size_t combined_lane() const noexcept {
    return labels_.empty() ? 0 : labels_.size() - 1;
  }
  const std::vector<std::string>& lane_labels() const noexcept {
    return labels_;
  }
  std::size_t nodes() const noexcept { return node_count_; }

  /// Hot path: records one evaluation instant of `node` at sim time
  /// `time`. `lane_scores` points at lanes() doubles — one per predictor
  /// lane plus the combined score last; NaN marks an unscored lane.
  /// Owning-thread only.
  void observe(std::size_t node, double time,
               const double* lane_scores) noexcept;

  /// Hot path: resolves every pending instant of `node` whose window
  /// closed at or before `now` against the node's failure log (ascending
  /// times, the node trace's failures() span). Owning-thread only.
  void resolve(std::size_t node, double now,
               std::span<const double> failures) noexcept;

  // --- controller-thread reads (no parallel section in flight) ---

  ConfusionCounts node_cumulative(std::size_t node, std::size_t lane) const;
  ConfusionCounts node_windowed(std::size_t node, std::size_t lane) const;
  /// Sums over nodes [begin, begin + count) — the per-shard Eq. 8 feed.
  ConfusionCounts windowed_nodes(std::size_t lane, std::size_t begin,
                                 std::size_t count) const;
  ConfusionCounts cumulative(std::size_t lane) const;
  ConfusionCounts windowed(std::size_t lane) const;

  /// Unresolved instants currently held across all nodes.
  std::uint64_t pending_total() const noexcept;

  /// Streaming AUC estimate for a lane by trapezoidal sweep over the
  /// score-distribution bins; 0.5 when either class is still empty.
  double auc_estimate(std::size_t lane) const;

  /// Recomputes the per-lane precision/recall/F/fpr/AUC gauges and the
  /// pending-instant gauge from the windowed tallies.
  void refresh_gauges();

  const QualityConfig& config() const noexcept { return config_; }

 private:
  /// Per-lane instrument handles (registered by set_predictors).
  struct LaneInstruments {
    Counter* outcomes[4] = {nullptr, nullptr, nullptr, nullptr};
    std::vector<Counter*> pos_bins;
    std::vector<Counter*> neg_bins;
    Gauge* precision = nullptr;
    Gauge* recall = nullptr;
    Gauge* f_measure = nullptr;
    Gauge* fpr = nullptr;
    Gauge* auc = nullptr;
  };

  // Outcome codes: index into cum_/win_/LaneInstruments::outcomes.
  static constexpr std::uint8_t kTp = 0;
  static constexpr std::uint8_t kFp = 1;
  static constexpr std::uint8_t kTn = 2;
  static constexpr std::uint8_t kFn = 3;

  std::size_t cell(std::size_t node, std::size_t lane) const noexcept {
    return node * labels_.size() + lane;
  }

  void tally(std::size_t node, std::size_t lane, std::uint8_t code,
             double score) noexcept;
  void drop_pending(std::size_t node) noexcept;
  ConfusionCounts from_array(const std::uint64_t* c) const noexcept;

  QualityConfig config_;
  MetricsRegistry* registry_;

  std::vector<std::string> labels_;  // predictor lanes + "combined"
  std::vector<LaneInstruments> inst_;
  Counter* observed_ = nullptr;
  Counter* resolved_ = nullptr;
  Counter* evicted_ = nullptr;
  Gauge* pending_gauge_ = nullptr;

  std::size_t node_count_ = 0;
  // Pending instants: per-node ring of (time, lane scores).
  std::vector<double> pend_time_;    // nodes x pending_capacity
  std::vector<double> pend_scores_;  // nodes x pending_capacity x lanes
  std::vector<std::size_t> pend_head_;
  std::vector<std::size_t> pend_size_;
  // Resolved outcomes: cumulative u64[4] and windowed u32[4] tallies per
  // (node, lane), plus the outcome-code ring backing the sliding window.
  std::vector<std::uint64_t> cum_;   // nodes x lanes x 4
  std::vector<std::uint32_t> win_;   // nodes x lanes x 4
  std::vector<std::uint8_t> ring_;   // nodes x lanes x outcome_window
  std::vector<std::uint64_t> ring_len_;  // nodes x lanes
};

}  // namespace pfm::obs
