#include "numerics/logistic.hpp"

#include <cmath>
#include <stdexcept>

namespace pfm::num {

double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

void LogisticRegression::fit(std::span<const double> features, std::size_t dim,
                             std::span<const int> labels,
                             const Options& opts) {
  if (dim == 0 || features.size() % dim != 0) {
    throw std::invalid_argument("LogisticRegression::fit: bad shape");
  }
  const std::size_t n = features.size() / dim;
  if (n == 0 || labels.size() != n) {
    throw std::invalid_argument("LogisticRegression::fit: label mismatch");
  }

  weights_.assign(dim, 0.0);
  intercept_ = 0.0;

  std::vector<double> grad(dim);
  const double inv_n = 1.0 / static_cast<double>(n);

  auto loss_at = [&](std::span<const double> w, double b) {
    double loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double z = b;
      for (std::size_t j = 0; j < dim; ++j) z += w[j] * features[i * dim + j];
      // log(1+exp(-y*z)) with y in {-1,+1}
      const double yz = (labels[i] ? 1.0 : -1.0) * z;
      loss += yz > 0.0 ? std::log1p(std::exp(-yz)) : -yz + std::log1p(std::exp(yz));
    }
    loss *= inv_n;
    for (std::size_t j = 0; j < dim; ++j) loss += 0.5 * opts.l2 * w[j] * w[j];
    return loss;
  };

  double step = opts.learning_rate;
  double current_loss = loss_at(weights_, intercept_);
  for (std::size_t iter = 0; iter < opts.max_iters; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double z = intercept_;
      for (std::size_t j = 0; j < dim; ++j) {
        z += weights_[j] * features[i * dim + j];
      }
      const double err = sigmoid(z) - static_cast<double>(labels[i]);
      grad_b += err;
      for (std::size_t j = 0; j < dim; ++j) {
        grad[j] += err * features[i * dim + j];
      }
    }
    grad_b *= inv_n;
    double gnorm2 = grad_b * grad_b;
    for (std::size_t j = 0; j < dim; ++j) {
      grad[j] = grad[j] * inv_n + opts.l2 * weights_[j];
      gnorm2 += grad[j] * grad[j];
    }
    if (std::sqrt(gnorm2) < opts.tolerance) break;

    // Backtracking line search on the full-batch loss.
    std::vector<double> w_try(dim);
    double loss_try;
    double b_try;
    for (;;) {
      for (std::size_t j = 0; j < dim; ++j) {
        w_try[j] = weights_[j] - step * grad[j];
      }
      b_try = intercept_ - step * grad_b;
      loss_try = loss_at(w_try, b_try);
      if (loss_try <= current_loss || step < 1e-12) break;
      step *= 0.5;
    }
    weights_ = std::move(w_try);
    intercept_ = b_try;
    current_loss = loss_try;
    step = std::min(step * 2.0, opts.learning_rate);
  }
}

double LogisticRegression::predict_probability(std::span<const double> x) const {
  if (!fitted()) {
    throw std::invalid_argument("LogisticRegression: not fitted");
  }
  if (x.size() != weights_.size()) {
    throw std::invalid_argument("LogisticRegression: size mismatch");
  }
  double z = intercept_;
  for (std::size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
  return sigmoid(z);
}

}  // namespace pfm::num
