#pragma once

#include <span>
#include <vector>

#include "numerics/matrix.hpp"

namespace pfm::num {

/// Matrix exponential exp(A) via Padé(13) approximation with scaling and
/// squaring (Higham 2005 style, fixed order). Suitable for the small dense
/// generators used in this library.
Matrix expm(const Matrix& a);

/// Action of the matrix exponential on a row vector for a CTMC generator:
/// returns x * exp(t Q) computed by uniformization (Jensen's method).
///
/// `q` must be a generator (rows sum to <= 0, off-diagonals >= 0). This is
/// numerically robust for large t where expm would over-scale, and keeps
/// probability vectors nonnegative. `tol` bounds the truncation error.
std::vector<double> uniformized_transient(const Matrix& q,
                                          std::span<const double> x, double t,
                                          double tol = 1e-12);

}  // namespace pfm::num
