#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace pfm::num {

/// Seedable random number generator used throughout the library.
///
/// All stochastic components receive an Rng by reference (no global state),
/// which keeps simulations and training runs reproducible: the same seed
/// yields the same traces, datasets and fitted models.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(gen_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Standard normal draw.
  double normal() { return normal_(gen_); }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential draw with the given rate (mean 1/rate).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(gen_);
  }

  /// Weibull draw with shape k and scale lambda.
  double weibull(double shape, double scale) {
    return std::weibull_distribution<double>(shape, scale)(gen_);
  }

  /// Lognormal draw with the given log-space mean/stddev.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(gen_);
  }

  /// Poisson draw with the given mean.
  ///
  /// Deliberately out-of-line: the definition lives in the translation
  /// unit that interposes a reentrant lgamma, so every binary drawing
  /// Poisson variates links the race-free version (see rng.cpp).
  std::int64_t poisson(double mean);

  /// Bernoulli draw.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(gen_);
  }

  /// Gamma draw with shape and scale.
  double gamma(double shape, double scale) {
    return std::gamma_distribution<double>(shape, scale)(gen_);
  }

  /// Index draw from unnormalized nonnegative weights.
  /// Throws std::invalid_argument when weights are empty or all zero.
  std::size_t categorical(std::span<const double> weights);

  /// Fisher-Yates shuffle of an index set {0..n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Underlying engine, for interop with <random> distributions.
  std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace pfm::num
