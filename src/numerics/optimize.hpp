#pragma once

#include <functional>
#include <span>
#include <vector>

namespace pfm::num {

/// Result of a derivative-free minimization.
struct OptimizeResult {
  std::vector<double> x;      ///< best point found
  double value = 0.0;         ///< objective at x
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Options for Nelder-Mead.
struct NelderMeadOptions {
  std::size_t max_evaluations = 2000;
  /// Stop when the simplex spread of objective values falls below this.
  double f_tolerance = 1e-9;
  /// Initial simplex step per coordinate (relative to |x0_i| + 0.1).
  double initial_step = 0.25;
};

/// Nelder-Mead downhill simplex minimization of `f` starting at `x0`.
///
/// Used to tune the nonlinear kernel parameters of the UBF predictor
/// (centers/widths/mixture weights). Throws std::invalid_argument for an
/// empty starting point.
OptimizeResult nelder_mead(
    const std::function<double(std::span<const double>)>& f,
    std::span<const double> x0, const NelderMeadOptions& opts = {});

}  // namespace pfm::num
