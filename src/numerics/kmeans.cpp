#include "numerics/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pfm::num {

namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

KMeansResult kmeans(std::span<const double> data, std::size_t dim,
                    std::size_t k, Rng& rng, std::size_t max_iters) {
  if (k == 0 || dim == 0 || data.size() % dim != 0) {
    throw std::invalid_argument("kmeans: bad shape");
  }
  const std::size_t n = data.size() / dim;
  if (n < k) throw std::invalid_argument("kmeans: fewer points than clusters");

  auto point = [&](std::size_t i) {
    return std::span<const double>{data.data() + i * dim, dim};
  };

  KMeansResult res;
  res.k = k;
  res.dim = dim;
  res.centers.resize(k * dim);
  res.assignment.assign(n, 0);

  // k-means++ seeding.
  std::vector<double> min_d(n, std::numeric_limits<double>::max());
  {
    const auto first = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    for (std::size_t j = 0; j < dim; ++j) res.centers[j] = point(first)[j];
    for (std::size_t c = 1; c < k; ++c) {
      std::span<const double> prev{res.centers.data() + (c - 1) * dim, dim};
      for (std::size_t i = 0; i < n; ++i) {
        min_d[i] = std::min(min_d[i], sq_dist(point(i), prev));
      }
      std::size_t pick;
      const double total = [&] {
        double s = 0.0;
        for (double d : min_d) s += d;
        return s;
      }();
      if (total <= 0.0) {
        pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      } else {
        pick = rng.categorical(min_d);
      }
      for (std::size_t j = 0; j < dim; ++j) {
        res.centers[c * dim + j] = point(pick)[j];
      }
    }
  }

  std::vector<double> sums(k * dim);
  std::vector<std::size_t> counts(k);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    res.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t arg = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d =
            sq_dist(point(i), {res.centers.data() + c * dim, dim});
        if (d < best) {
          best = d;
          arg = c;
        }
      }
      if (arg != res.assignment[i]) {
        res.assignment[i] = arg;
        changed = true;
      }
      res.inertia += best;
    }
    if (!changed && iter > 0) break;

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = res.assignment[i];
      ++counts[c];
      for (std::size_t j = 0; j < dim; ++j) {
        sums[c * dim + j] += point(i)[j];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        for (std::size_t j = 0; j < dim; ++j) {
          res.centers[c * dim + j] = point(pick)[j];
        }
        continue;
      }
      for (std::size_t j = 0; j < dim; ++j) {
        res.centers[c * dim + j] =
            sums[c * dim + j] / static_cast<double>(counts[c]);
      }
    }
  }
  return res;
}

}  // namespace pfm::num
