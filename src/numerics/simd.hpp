#pragma once

#include <cstddef>
#include <cstdint>

namespace pfm::num::simd {

/// Virtual f64 lane width shared by every backend. AVX2 maps it onto one
/// 256-bit register, NEON onto two 128-bit registers, the portable
/// backend onto four scalar accumulators — but all three walk the same
/// per-lane operation sequence (same IEEE ops, same order, contraction
/// disabled), so the bits a batch produces never depend on the backend.
/// The frozen-predictor artifact records this constant; a mismatch at
/// load time is a typed error, never silent divergence.
inline constexpr std::size_t kLanes = 4;

/// The backend actually serving calls: "avx2", "neon" or "scalar".
/// Resolved once per process — an AVX2 build running on a CPU without
/// AVX2 reports (and uses) "scalar".
const char* backend_name() noexcept;

/// True when backend_name() is a vector ISA (the bench gate only holds
/// SIMD speedups against builds where this is true).
bool vectorized() noexcept;

/// y[i] = exp(x[i]) for i < n via a Cephes-style rational approximation
/// (faithful to within ~1 ULP of libm). Identical bits on every backend;
/// overflow -> +inf, underflow -> 0 (gradual through the denormal range),
/// NaN passes through.
void vexp(const double* x, double* y, std::size_t n) noexcept;

/// y[i] += a * x[i]. The per-element statement matches num::axpy exactly,
/// so accumulation order — and therefore bits — is unchanged.
void axpy(double a, const double* x, double* y, std::size_t n) noexcept;

/// Dot product with fixed four-lane accumulation: element i lands in
/// accumulator i % 4 (the trailing partial block is zero-padded), and the
/// lanes reduce as (acc0 + acc1) + (acc2 + acc3). Deterministic across
/// backends, but associated differently from num::dot — callers needing
/// bit-compatibility with the scalar reference must keep using num::dot.
double dot(const double* a, const double* b, std::size_t n) noexcept;

/// d2[c] = sum_j (features[j * batch + c] - center[j])^2 for c < batch:
/// the Eq. 1 distance sweep over SoA feature columns. Per context the
/// j-accumulation order matches the scalar reference loop, so d2 is
/// bit-identical to the kOptimized path.
void squared_distance_soa(const double* features, std::size_t batch,
                          std::size_t dim, const double* center,
                          double* d2) noexcept;

/// Eq. 1 kernel activation from squared distances (in place allowed:
/// act may alias d2). With mixture_kernels:
///   act[c] = mixture * exp(-d*d / two_w_sq)
///          + (1 - mixture) / (1 + exp((d - w) / step_scale)),  d = sqrt(d2[c])
/// else just the Gaussian term. Uses vexp, so activations differ from the
/// libm-based scalar sweep by the documented ULP bound only.
void mixture_activation(const double* d2, std::size_t n, double w,
                        double two_w_sq, double step_scale, double mixture,
                        bool mixture_kernels, double* act) noexcept;

/// inout[c] = sigmoid(4 * (inout[c] - 0.5)) — the bounded score map of
/// the UBF raw output, mirroring num::sigmoid's stable two-branch form
/// lane-wise (with vexp in place of libm exp).
void score_sigmoid(double* inout, std::size_t n) noexcept;

/// out[c] = sigmoid(0.7 * z_level[c] + 1.1 * z_slope[c]) — the trend
/// predictor's level+slope combine, vexp-based like score_sigmoid.
void trend_sigmoid(const double* z_level, const double* z_slope, double* out,
                   std::size_t n) noexcept;

namespace detail {

// --- shared exp constants (Cephes expd: exp(x) = 2^n * P(r)/Q(r)) ---------
// Every backend consumes these in the same operation order; simd.cpp's
// vector code and simd_portable.cpp's scalar lanes must never diverge.
inline constexpr double kExpOverflow = 709.782712893383996732;   // > -> inf
inline constexpr double kExpUnderflow = -745.133219101941108420; // < -> 0
inline constexpr double kLog2E = 1.44269504088896340736;
inline constexpr double kLn2Hi = 6.93145751953125e-1;
inline constexpr double kLn2Lo = 1.42860682030941723212e-6;
inline constexpr double kExpP0 = 1.26177193074810590878e-4;
inline constexpr double kExpP1 = 3.02994407707441961300e-2;
inline constexpr double kExpP2 = 9.99999999999999999910e-1;
inline constexpr double kExpQ0 = 3.00198505138664455042e-6;
inline constexpr double kExpQ1 = 2.52448340349684104192e-3;
inline constexpr double kExpQ2 = 2.27265548208155028766e-1;
inline constexpr double kExpQ3 = 2.00000000000000000005e0;

/// One reference lane of vexp (simd_portable.cpp; compiled without any
/// vector ISA flags and with contraction off).
double exp_lane(double x) noexcept;

/// One reference lane of the stable sigmoid(z) using exp_lane.
double sigmoid_lane(double z) noexcept;

// Portable whole-array implementations (the "scalar" backend, and the
// runtime fallback of an AVX2 build on a CPU without AVX2).
void vexp_portable(const double* x, double* y, std::size_t n) noexcept;
void axpy_portable(double a, const double* x, double* y,
                   std::size_t n) noexcept;
double dot_portable(const double* a, const double* b, std::size_t n) noexcept;
void squared_distance_soa_portable(const double* features, std::size_t batch,
                                   std::size_t dim, const double* center,
                                   double* d2) noexcept;
void mixture_activation_portable(const double* d2, std::size_t n, double w,
                                 double two_w_sq, double step_scale,
                                 double mixture, bool mixture_kernels,
                                 double* act) noexcept;
void score_sigmoid_portable(double* inout, std::size_t n) noexcept;
void trend_sigmoid_portable(const double* z_level, const double* z_slope,
                            double* out, std::size_t n) noexcept;

}  // namespace detail

}  // namespace pfm::num::simd
