#pragma once

#include <optional>
#include <span>
#include <vector>

#include "numerics/matrix.hpp"

namespace pfm::num {

/// LU decomposition with partial pivoting (Doolittle).
///
/// Factorizes a square matrix A as P*A = L*U and exposes solve/determinant.
/// Construction throws std::invalid_argument for non-square input and
/// std::runtime_error when the matrix is numerically singular.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  /// Solves A x = b. Throws std::invalid_argument on size mismatch.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// Determinant of A.
  double determinant() const noexcept;

 private:
  Matrix lu_;                  // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;
  int sign_ = 1;
};

/// Solves the square system A x = b via LU. Convenience wrapper.
std::vector<double> solve(const Matrix& a, std::span<const double> b);

/// Inverse of a square matrix via LU. Throws on singular input.
Matrix inverse(const Matrix& a);

/// Linear least squares: minimizes ||A x - b||_2 via the normal equations
/// with optional Tikhonov damping `ridge` (added to the diagonal of A^T A,
/// scaled by its trace) to keep near-rank-deficient designs solvable.
std::vector<double> least_squares(const Matrix& a, std::span<const double> b,
                                  double ridge = 0.0);

/// Finds the stationary distribution pi of a CTMC generator Q (rows sum to
/// zero, off-diagonal rates nonnegative): pi Q = 0, sum(pi) = 1.
/// Throws std::invalid_argument when Q is not square.
std::vector<double> stationary_distribution(const Matrix& q);

}  // namespace pfm::num
