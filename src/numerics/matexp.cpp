#include "numerics/matexp.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "numerics/linalg.hpp"

namespace pfm::num {

namespace {

// Degree-13 Padé numerator coefficients for expm (Higham 2005).
constexpr double kPade13[] = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
    1187353796428800.0,  129060195264000.0,   10559470521600.0,
    670442572800.0,      33522128640.0,       1323241920.0,
    40840800.0,          960960.0,            16380.0,
    182.0,               1.0};

}  // namespace

Matrix expm(const Matrix& a) {
  if (!a.square()) throw std::invalid_argument("expm: matrix must be square");
  const std::size_t n = a.rows();
  if (n == 0) return a;

  // Scaling: bring ||A/2^s|| below ~5.4 (theta_13).
  const double norm = a.norm_inf();
  int s = 0;
  if (norm > 5.371920351148152) {
    s = static_cast<int>(std::ceil(std::log2(norm / 5.371920351148152)));
  }
  Matrix as = a * std::pow(2.0, -s);

  // Padé(13): U = A*(b13*A6*A6 + b11*A6*A4 + b9*A6*A2 + b7*A6 + b5*A4 + b3*A2 + b1*I)
  //           V =    b12*A6*A6 + b10*A6*A4 + b8*A6*A2 + b6*A6 + b4*A4 + b2*A2 + b0*I
  const Matrix a2 = as * as;
  const Matrix a4 = a2 * a2;
  const Matrix a6 = a4 * a2;
  const Matrix eye = Matrix::identity(n);

  Matrix w1 = kPade13[13] * a6 + kPade13[11] * a4 + kPade13[9] * a2;
  Matrix w2 = kPade13[7] * a6 + kPade13[5] * a4 + kPade13[3] * a2 +
              kPade13[1] * eye;
  Matrix u = as * (a6 * w1 + w2);

  Matrix z1 = kPade13[12] * a6 + kPade13[10] * a4 + kPade13[8] * a2;
  Matrix v = a6 * z1 + kPade13[6] * a6 + kPade13[4] * a4 + kPade13[2] * a2 +
             kPade13[0] * eye;

  // r = (V - U)^{-1} (V + U)
  Matrix num = v + u;
  Matrix den = v - u;
  Matrix r = LuDecomposition(std::move(den)).solve(num);

  for (int i = 0; i < s; ++i) r = r * r;
  return r;
}

std::vector<double> uniformized_transient(const Matrix& q,
                                          std::span<const double> x, double t,
                                          double tol) {
  if (!q.square()) throw std::invalid_argument("uniformization: Q not square");
  if (x.size() != q.rows()) {
    throw std::invalid_argument("uniformization: vector size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("uniformization: negative time");

  const std::size_t n = q.rows();
  std::vector<double> result(x.begin(), x.end());
  if (t == 0.0 || n == 0) return result;

  // Uniformization rate: Lambda >= max |q_ii|.
  double lambda = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    lambda = std::max(lambda, std::abs(q(i, i)));
  }
  if (lambda == 0.0) return result;  // Q == 0
  lambda *= 1.0001;  // headroom so P stays (sub)stochastic under round-off

  // P = I + Q / Lambda.
  Matrix p = Matrix::identity(n) + q * (1.0 / lambda);

  // x exp(tQ) = sum_k PoissonPmf(k; Lambda t) * x P^k.
  const double a = lambda * t;
  // Number of terms: mean + 10*sqrt(mean) + 50 is a generous Poisson tail
  // bound; also respect the tolerance by tracking accumulated mass.
  const std::uint64_t kmax =
      static_cast<std::uint64_t>(a + 10.0 * std::sqrt(a) + 50.0);

  std::vector<double> term(x.begin(), x.end());  // x P^k
  std::vector<double> acc(n, 0.0);
  // Poisson weights computed in log space to survive large a.
  double log_w = -a;  // log pmf(0)
  double mass = 0.0;
  for (std::uint64_t k = 0; k <= kmax; ++k) {
    const double w = std::exp(log_w);
    if (w > 0.0) {
      for (std::size_t i = 0; i < n; ++i) acc[i] += w * term[i];
      mass += w;
    }
    if (mass >= 1.0 - tol) break;
    term = p.apply_left(term);
    log_w += std::log(a) - std::log(static_cast<double>(k + 1));
  }
  return acc;
}

}  // namespace pfm::num
