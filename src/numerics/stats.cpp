#include "numerics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pfm::num {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) noexcept {
  if (v.size() < 2) return 0.0;
  RunningStats rs;
  for (double x : v) rs.add(x);
  return rs.variance();
}

double stddev(std::span<const double> v) noexcept {
  return std::sqrt(variance(v));
}

double quantile(std::span<const double> v, double q) {
  if (v.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q range");
  std::vector<double> s(v.begin(), v.end());
  std::sort(s.begin(), s.end());
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("pearson: length");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

namespace {

// fit_line sits in the batched scorers' hot closure (pfm-analyze
// hotpath); the argument checks stay, but the throw statements live
// out of line with the exact reference messages.
// pfm-cold
[[noreturn]] void throw_fit_line_length() {
  throw std::invalid_argument("fit_line: length");
}
// pfm-cold
[[noreturn]] void throw_fit_line_underdetermined() {
  throw std::invalid_argument("fit_line: need >= 2 points");
}

}  // namespace

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw_fit_line_length();
  if (x.size() < 2) throw_fit_line_underdetermined();
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  LinearFit f;
  if (sxx <= 0.0) {
    f.intercept = my;
    return f;
  }
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 0.0;
  return f;
}

void FeatureScaler::fit(std::span<const double> data, std::size_t cols) {
  if (cols == 0 || data.size() % cols != 0) {
    throw std::invalid_argument("FeatureScaler::fit: bad shape");
  }
  const std::size_t rows = data.size() / cols;
  lo_.assign(cols, 0.0);
  hi_.assign(cols, 0.0);
  for (std::size_t j = 0; j < cols; ++j) {
    double lo = data[j], hi = data[j];
    for (std::size_t i = 1; i < rows; ++i) {
      lo = std::min(lo, data[i * cols + j]);
      hi = std::max(hi, data[i * cols + j]);
    }
    lo_[j] = lo;
    hi_[j] = hi;
  }
}

void FeatureScaler::transform(std::span<double> row) const {
  if (lo_.empty()) throw std::invalid_argument("FeatureScaler: not fitted");
  if (row.size() != lo_.size()) {
    throw std::invalid_argument("FeatureScaler: size mismatch");
  }
  for (std::size_t j = 0; j < row.size(); ++j) {
    const double range = hi_[j] - lo_[j];
    row[j] = range > 0.0 ? (row[j] - lo_[j]) / range : 0.5;
  }
}

}  // namespace pfm::num
