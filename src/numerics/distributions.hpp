#pragma once

#include <span>

namespace pfm::num {

/// Exponential lifetime distribution (constant hazard).
/// Used by the failure-tracking baseline predictor and reliability fits.
struct Exponential {
  double rate = 1.0;  ///< lambda > 0

  double pdf(double t) const noexcept;
  double cdf(double t) const noexcept;
  /// Survival function 1 - cdf.
  double survival(double t) const noexcept;
  double hazard(double) const noexcept { return rate; }
  double mean() const noexcept { return 1.0 / rate; }

  /// Maximum-likelihood fit from nonnegative samples.
  /// Throws std::invalid_argument for empty input or non-positive mean.
  static Exponential mle(std::span<const double> samples);
};

/// Weibull lifetime distribution; shape > 1 models aging (increasing
/// hazard), shape < 1 infant mortality.
struct Weibull {
  double shape = 1.0;  ///< k > 0
  double scale = 1.0;  ///< lambda > 0

  double pdf(double t) const noexcept;
  double cdf(double t) const noexcept;
  double survival(double t) const noexcept;
  double hazard(double t) const noexcept;
  double mean() const noexcept;

  /// Maximum-likelihood fit via Newton iteration on the shape profile
  /// likelihood. Throws std::invalid_argument on empty/degenerate input or
  /// when the iteration fails to converge.
  static Weibull mle(std::span<const double> samples);

  /// Log-likelihood of the samples under this distribution.
  double log_likelihood(std::span<const double> samples) const;
};

}  // namespace pfm::num
