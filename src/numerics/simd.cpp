// Backend translation unit of the SIMD layer. CMake compiles exactly one
// backend into this file (PFM_SIMD=auto|avx2|neon|scalar):
//
//   - PFM_SIMD_AVX2: this TU is built with -mavx2 (never -mfma) and
//     -ffp-contract=off; every public entry point dispatches on a
//     once-resolved CPUID check, falling back to the portable lanes in
//     simd_portable.cpp on hardware without AVX2 — no FP code in this TU
//     executes on the fallback path, so the binary stays runnable there.
//   - PFM_SIMD_NEON: aarch64 builds; NEON is architectural, no dispatch.
//   - neither: the public API forwards to the portable lanes.
//
// Bit-identity contract: each vector sequence mirrors the portable lane
// ops one-for-one (same IEEE operations, same order, no contraction), so
// vexp and every helper built on it produce the same bits on all
// backends. Lanes are independent — a context's score never depends on
// its batch neighbors, which is what keeps remainder handling (padded
// lanes) and batch composition out of the numbers.

#include "numerics/simd.hpp"

#include <cstring>

#if defined(PFM_SIMD_AVX2)
#include <immintrin.h>
#elif defined(PFM_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace pfm::num::simd {

namespace detail {
namespace {

#if defined(PFM_SIMD_AVX2)

bool use_avx2() noexcept {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

// 2^e for integer-valued lanes in the normal-exponent range; mirrors
// pow2_int in simd_portable.cpp.
inline __m256d pow2_int4(__m256d e) noexcept {
  const __m128i i32 = _mm256_cvtpd_epi32(e);
  const __m256i i64 = _mm256_cvtepi32_epi64(i32);
  const __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(i64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_castsi256_pd(bits);
}

inline __m256d exp4(__m256d x) noexcept {
  const __m256d nan_mask = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
  const __m256d over =
      _mm256_cmp_pd(x, _mm256_set1_pd(kExpOverflow), _CMP_GT_OQ);
  const __m256d under =
      _mm256_cmp_pd(x, _mm256_set1_pd(kExpUnderflow), _CMP_LT_OQ);
  // Clamp the pipeline input so masked-off lanes cannot poison the
  // integer conversion; their results are overwritten by the blends.
  const __m256d xc = _mm256_max_pd(
      _mm256_set1_pd(kExpUnderflow),
      _mm256_min_pd(x, _mm256_set1_pd(kExpOverflow)));
  const __m256d n = _mm256_floor_pd(_mm256_add_pd(
      _mm256_mul_pd(xc, _mm256_set1_pd(kLog2E)), _mm256_set1_pd(0.5)));
  __m256d r = _mm256_sub_pd(xc, _mm256_mul_pd(n, _mm256_set1_pd(kLn2Hi)));
  r = _mm256_sub_pd(r, _mm256_mul_pd(n, _mm256_set1_pd(kLn2Lo)));
  const __m256d xx = _mm256_mul_pd(r, r);
  __m256d px = _mm256_mul_pd(_mm256_set1_pd(kExpP0), xx);
  px = _mm256_add_pd(px, _mm256_set1_pd(kExpP1));
  px = _mm256_mul_pd(px, xx);
  px = _mm256_add_pd(px, _mm256_set1_pd(kExpP2));
  px = _mm256_mul_pd(px, r);
  __m256d qx = _mm256_mul_pd(_mm256_set1_pd(kExpQ0), xx);
  qx = _mm256_add_pd(qx, _mm256_set1_pd(kExpQ1));
  qx = _mm256_mul_pd(qx, xx);
  qx = _mm256_add_pd(qx, _mm256_set1_pd(kExpQ2));
  qx = _mm256_mul_pd(qx, xx);
  qx = _mm256_add_pd(qx, _mm256_set1_pd(kExpQ3));
  const __m256d e = _mm256_div_pd(px, _mm256_sub_pd(qx, px));
  __m256d y = _mm256_add_pd(_mm256_set1_pd(1.0),
                            _mm256_mul_pd(_mm256_set1_pd(2.0), e));
  const __m256d a = _mm256_floor_pd(_mm256_mul_pd(n, _mm256_set1_pd(0.5)));
  const __m256d b = _mm256_sub_pd(n, a);
  y = _mm256_mul_pd(_mm256_mul_pd(y, pow2_int4(a)), pow2_int4(b));
  const __m256d inf = _mm256_set1_pd(__builtin_inf());
  y = _mm256_blendv_pd(y, inf, over);
  y = _mm256_blendv_pd(y, _mm256_setzero_pd(), under);
  y = _mm256_blendv_pd(y, x, nan_mask);
  return y;
}

// sigmoid(z) per lane, mirroring sigmoid_lane: e = exp(-|z|) shared by
// both branches, numerator blended between 1 and e.
inline __m256d sigmoid4(__m256d z) noexcept {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d nonneg = _mm256_cmp_pd(z, _mm256_setzero_pd(), _CMP_GE_OQ);
  const __m256d az = _mm256_blendv_pd(z, _mm256_xor_pd(z, sign), nonneg);
  const __m256d e = exp4(az);
  const __m256d denom = _mm256_add_pd(_mm256_set1_pd(1.0), e);
  const __m256d num = _mm256_blendv_pd(e, _mm256_set1_pd(1.0), nonneg);
  return _mm256_div_pd(num, denom);
}

void vexp_avx2(const double* x, double* y, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_pd(y + i, exp4(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    double tin[kLanes] = {0.0, 0.0, 0.0, 0.0};
    double tout[kLanes];
    std::memcpy(tin, x + i, (n - i) * sizeof(double));
    _mm256_storeu_pd(tout, exp4(_mm256_loadu_pd(tin)));
    std::memcpy(y + i, tout, (n - i) * sizeof(double));
  }
}

void axpy_avx2(double a, const double* x, double* y, std::size_t n) noexcept {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d yv = _mm256_add_pd(
        _mm256_loadu_pd(y + i), _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, yv);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

double dot_avx2(const double* a, const double* b, std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  if (i < n) {
    double ta[kLanes] = {0.0, 0.0, 0.0, 0.0};
    double tb[kLanes] = {0.0, 0.0, 0.0, 0.0};
    std::memcpy(ta, a + i, (n - i) * sizeof(double));
    std::memcpy(tb, b + i, (n - i) * sizeof(double));
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(ta), _mm256_loadu_pd(tb)));
  }
  double lanes[kLanes];
  _mm256_storeu_pd(lanes, acc);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void squared_distance_soa_avx2(const double* features, std::size_t batch,
                               std::size_t dim, const double* center,
                               double* d2) noexcept {
  std::size_t c = 0;
  for (; c + kLanes <= batch; c += kLanes) {
    _mm256_storeu_pd(d2 + c, _mm256_setzero_pd());
  }
  for (; c < batch; ++c) d2[c] = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    const __m256d cj = _mm256_set1_pd(center[j]);
    const double* col = features + j * batch;
    c = 0;
    for (; c + kLanes <= batch; c += kLanes) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(col + c), cj);
      _mm256_storeu_pd(
          d2 + c, _mm256_add_pd(_mm256_loadu_pd(d2 + c), _mm256_mul_pd(d, d)));
    }
    const double cjs = center[j];
    for (; c < batch; ++c) {
      const double d = col[c] - cjs;
      d2[c] += d * d;
    }
  }
}

inline __m256d mixture_activation4(__m256d d2v, __m256d wv, __m256d two_w_sq,
                                   __m256d step_scale, __m256d mv,
                                   __m256d one_minus_m,
                                   bool mixture_kernels) noexcept {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d d = _mm256_sqrt_pd(d2v);
  const __m256d garg =
      _mm256_div_pd(_mm256_mul_pd(_mm256_xor_pd(d, sign), d), two_w_sq);
  const __m256d gaussian = exp4(garg);
  if (!mixture_kernels) return gaussian;
  const __m256d e = exp4(_mm256_div_pd(_mm256_sub_pd(d, wv), step_scale));
  const __m256d step =
      _mm256_div_pd(_mm256_set1_pd(1.0), _mm256_add_pd(_mm256_set1_pd(1.0), e));
  return _mm256_add_pd(_mm256_mul_pd(mv, gaussian),
                       _mm256_mul_pd(one_minus_m, step));
}

void mixture_activation_avx2(const double* d2, std::size_t n, double w,
                             double two_w_sq, double step_scale, double mixture,
                             bool mixture_kernels, double* act) noexcept {
  const __m256d wv = _mm256_set1_pd(w);
  const __m256d tw = _mm256_set1_pd(two_w_sq);
  const __m256d ss = _mm256_set1_pd(step_scale);
  const __m256d mv = _mm256_set1_pd(mixture);
  const __m256d om = _mm256_set1_pd(1.0 - mixture);
  std::size_t c = 0;
  for (; c + kLanes <= n; c += kLanes) {
    _mm256_storeu_pd(act + c,
                     mixture_activation4(_mm256_loadu_pd(d2 + c), wv, tw, ss,
                                         mv, om, mixture_kernels));
  }
  if (c < n) {
    double tin[kLanes] = {0.0, 0.0, 0.0, 0.0};
    double tout[kLanes];
    std::memcpy(tin, d2 + c, (n - c) * sizeof(double));
    _mm256_storeu_pd(tout, mixture_activation4(_mm256_loadu_pd(tin), wv, tw,
                                               ss, mv, om, mixture_kernels));
    std::memcpy(act + c, tout, (n - c) * sizeof(double));
  }
}

void score_sigmoid_avx2(double* inout, std::size_t n) noexcept {
  const __m256d four = _mm256_set1_pd(4.0);
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t c = 0;
  for (; c + kLanes <= n; c += kLanes) {
    const __m256d z =
        _mm256_mul_pd(four, _mm256_sub_pd(_mm256_loadu_pd(inout + c), half));
    _mm256_storeu_pd(inout + c, sigmoid4(z));
  }
  if (c < n) {
    double tin[kLanes] = {0.5, 0.5, 0.5, 0.5};
    double tout[kLanes];
    std::memcpy(tin, inout + c, (n - c) * sizeof(double));
    const __m256d z =
        _mm256_mul_pd(four, _mm256_sub_pd(_mm256_loadu_pd(tin), half));
    _mm256_storeu_pd(tout, sigmoid4(z));
    std::memcpy(inout + c, tout, (n - c) * sizeof(double));
  }
}

void trend_sigmoid_avx2(const double* z_level, const double* z_slope,
                        double* out, std::size_t n) noexcept {
  const __m256d wl = _mm256_set1_pd(0.7);
  const __m256d ws = _mm256_set1_pd(1.1);
  std::size_t c = 0;
  for (; c + kLanes <= n; c += kLanes) {
    const __m256d z =
        _mm256_add_pd(_mm256_mul_pd(wl, _mm256_loadu_pd(z_level + c)),
                      _mm256_mul_pd(ws, _mm256_loadu_pd(z_slope + c)));
    _mm256_storeu_pd(out + c, sigmoid4(z));
  }
  if (c < n) {
    double tl[kLanes] = {0.0, 0.0, 0.0, 0.0};
    double ts[kLanes] = {0.0, 0.0, 0.0, 0.0};
    double tout[kLanes];
    std::memcpy(tl, z_level + c, (n - c) * sizeof(double));
    std::memcpy(ts, z_slope + c, (n - c) * sizeof(double));
    const __m256d z = _mm256_add_pd(_mm256_mul_pd(wl, _mm256_loadu_pd(tl)),
                                    _mm256_mul_pd(ws, _mm256_loadu_pd(ts)));
    _mm256_storeu_pd(tout, sigmoid4(z));
    std::memcpy(out + c, tout, (n - c) * sizeof(double));
  }
}

#elif defined(PFM_SIMD_NEON)

// NEON: the virtual 4-lane width maps onto two 128-bit registers; each
// pair of float64x2_t ops mirrors one portable-lane statement.

inline float64x2_t pow2_int2(float64x2_t e) noexcept {
  const int64x2_t i64 = vcvtq_s64_f64(e);
  const int64x2_t bits = vshlq_n_s64(vaddq_s64(i64, vdupq_n_s64(1023)), 52);
  return vreinterpretq_f64_s64(bits);
}

inline float64x2_t exp2l(float64x2_t x) noexcept {
  const uint64x2_t nan_mask = vceqq_f64(x, x);  // 0 where NaN
  const uint64x2_t over = vcgtq_f64(x, vdupq_n_f64(kExpOverflow));
  const uint64x2_t under = vcltq_f64(x, vdupq_n_f64(kExpUnderflow));
  const float64x2_t xc =
      vmaxq_f64(vdupq_n_f64(kExpUnderflow),
                vminq_f64(x, vdupq_n_f64(kExpOverflow)));
  const float64x2_t n = vrndmq_f64(
      vaddq_f64(vmulq_f64(xc, vdupq_n_f64(kLog2E)), vdupq_n_f64(0.5)));
  float64x2_t r = vsubq_f64(xc, vmulq_f64(n, vdupq_n_f64(kLn2Hi)));
  r = vsubq_f64(r, vmulq_f64(n, vdupq_n_f64(kLn2Lo)));
  const float64x2_t xx = vmulq_f64(r, r);
  float64x2_t px = vmulq_f64(vdupq_n_f64(kExpP0), xx);
  px = vaddq_f64(px, vdupq_n_f64(kExpP1));
  px = vmulq_f64(px, xx);
  px = vaddq_f64(px, vdupq_n_f64(kExpP2));
  px = vmulq_f64(px, r);
  float64x2_t qx = vmulq_f64(vdupq_n_f64(kExpQ0), xx);
  qx = vaddq_f64(qx, vdupq_n_f64(kExpQ1));
  qx = vmulq_f64(qx, xx);
  qx = vaddq_f64(qx, vdupq_n_f64(kExpQ2));
  qx = vmulq_f64(qx, xx);
  qx = vaddq_f64(qx, vdupq_n_f64(kExpQ3));
  const float64x2_t e = vdivq_f64(px, vsubq_f64(qx, px));
  float64x2_t y = vaddq_f64(vdupq_n_f64(1.0),
                            vmulq_f64(vdupq_n_f64(2.0), e));
  const float64x2_t a = vrndmq_f64(vmulq_f64(n, vdupq_n_f64(0.5)));
  const float64x2_t b = vsubq_f64(n, a);
  y = vmulq_f64(vmulq_f64(y, pow2_int2(a)), pow2_int2(b));
  y = vbslq_f64(over, vdupq_n_f64(__builtin_inf()), y);
  y = vbslq_f64(under, vdupq_n_f64(0.0), y);
  y = vbslq_f64(nan_mask, y, x);  // NaN lanes pass the input through
  return y;
}

inline float64x2_t sigmoid2(float64x2_t z) noexcept {
  const uint64x2_t nonneg = vcgeq_f64(z, vdupq_n_f64(0.0));
  const float64x2_t az = vbslq_f64(nonneg, vnegq_f64(z), z);
  const float64x2_t e = exp2l(az);
  const float64x2_t denom = vaddq_f64(vdupq_n_f64(1.0), e);
  const float64x2_t num = vbslq_f64(nonneg, vdupq_n_f64(1.0), e);
  return vdivq_f64(num, denom);
}

void vexp_neon(const double* x, double* y, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(y + i, exp2l(vld1q_f64(x + i)));
  if (i < n) {
    double tin[2] = {x[i], 0.0};
    double tout[2];
    vst1q_f64(tout, exp2l(vld1q_f64(tin)));
    y[i] = tout[0];
  }
}

void axpy_neon(double a, const double* x, double* y, std::size_t n) noexcept {
  const float64x2_t av = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i,
              vaddq_f64(vld1q_f64(y + i), vmulq_f64(av, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

double dot_neon(const double* a, const double* b, std::size_t n) noexcept {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc23 =
        vaddq_f64(acc23, vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  if (i < n) {
    double ta[kLanes] = {0.0, 0.0, 0.0, 0.0};
    double tb[kLanes] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t k = 0; i + k < n; ++k) {
      ta[k] = a[i + k];
      tb[k] = b[i + k];
    }
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(ta), vld1q_f64(tb)));
    acc23 = vaddq_f64(acc23, vmulq_f64(vld1q_f64(ta + 2), vld1q_f64(tb + 2)));
  }
  const double acc0 = vgetq_lane_f64(acc01, 0);
  const double acc1 = vgetq_lane_f64(acc01, 1);
  const double acc2 = vgetq_lane_f64(acc23, 0);
  const double acc3 = vgetq_lane_f64(acc23, 1);
  return (acc0 + acc1) + (acc2 + acc3);
}

void squared_distance_soa_neon(const double* features, std::size_t batch,
                               std::size_t dim, const double* center,
                               double* d2) noexcept {
  for (std::size_t c = 0; c < batch; ++c) d2[c] = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    const float64x2_t cj = vdupq_n_f64(center[j]);
    const double* col = features + j * batch;
    std::size_t c = 0;
    for (; c + 2 <= batch; c += 2) {
      const float64x2_t d = vsubq_f64(vld1q_f64(col + c), cj);
      vst1q_f64(d2 + c, vaddq_f64(vld1q_f64(d2 + c), vmulq_f64(d, d)));
    }
    const double cjs = center[j];
    for (; c < batch; ++c) {
      const double d = col[c] - cjs;
      d2[c] += d * d;
    }
  }
}

inline float64x2_t mixture_activation2(float64x2_t d2v, float64x2_t wv,
                                       float64x2_t two_w_sq,
                                       float64x2_t step_scale, float64x2_t mv,
                                       float64x2_t one_minus_m,
                                       bool mixture_kernels) noexcept {
  const float64x2_t d = vsqrtq_f64(d2v);
  const float64x2_t garg = vdivq_f64(vmulq_f64(vnegq_f64(d), d), two_w_sq);
  const float64x2_t gaussian = exp2l(garg);
  if (!mixture_kernels) return gaussian;
  const float64x2_t e = exp2l(vdivq_f64(vsubq_f64(d, wv), step_scale));
  const float64x2_t step =
      vdivq_f64(vdupq_n_f64(1.0), vaddq_f64(vdupq_n_f64(1.0), e));
  return vaddq_f64(vmulq_f64(mv, gaussian), vmulq_f64(one_minus_m, step));
}

void mixture_activation_neon(const double* d2, std::size_t n, double w,
                             double two_w_sq, double step_scale, double mixture,
                             bool mixture_kernels, double* act) noexcept {
  const float64x2_t wv = vdupq_n_f64(w);
  const float64x2_t tw = vdupq_n_f64(two_w_sq);
  const float64x2_t ss = vdupq_n_f64(step_scale);
  const float64x2_t mv = vdupq_n_f64(mixture);
  const float64x2_t om = vdupq_n_f64(1.0 - mixture);
  std::size_t c = 0;
  for (; c + 2 <= n; c += 2) {
    vst1q_f64(act + c, mixture_activation2(vld1q_f64(d2 + c), wv, tw, ss, mv,
                                           om, mixture_kernels));
  }
  if (c < n) {
    double tin[2] = {d2[c], 0.0};
    double tout[2];
    vst1q_f64(tout, mixture_activation2(vld1q_f64(tin), wv, tw, ss, mv, om,
                                        mixture_kernels));
    act[c] = tout[0];
  }
}

void score_sigmoid_neon(double* inout, std::size_t n) noexcept {
  const float64x2_t four = vdupq_n_f64(4.0);
  const float64x2_t half = vdupq_n_f64(0.5);
  std::size_t c = 0;
  for (; c + 2 <= n; c += 2) {
    const float64x2_t z =
        vmulq_f64(four, vsubq_f64(vld1q_f64(inout + c), half));
    vst1q_f64(inout + c, sigmoid2(z));
  }
  if (c < n) {
    double tin[2] = {inout[c], 0.5};
    double tout[2];
    const float64x2_t z = vmulq_f64(four, vsubq_f64(vld1q_f64(tin), half));
    vst1q_f64(tout, sigmoid2(z));
    inout[c] = tout[0];
  }
}

void trend_sigmoid_neon(const double* z_level, const double* z_slope,
                        double* out, std::size_t n) noexcept {
  const float64x2_t wl = vdupq_n_f64(0.7);
  const float64x2_t ws = vdupq_n_f64(1.1);
  std::size_t c = 0;
  for (; c + 2 <= n; c += 2) {
    const float64x2_t z = vaddq_f64(vmulq_f64(wl, vld1q_f64(z_level + c)),
                                    vmulq_f64(ws, vld1q_f64(z_slope + c)));
    vst1q_f64(out + c, sigmoid2(z));
  }
  if (c < n) {
    double tl[2] = {z_level[c], 0.0};
    double ts[2] = {z_slope[c], 0.0};
    double tout[2];
    const float64x2_t z = vaddq_f64(vmulq_f64(wl, vld1q_f64(tl)),
                                    vmulq_f64(ws, vld1q_f64(ts)));
    vst1q_f64(tout, sigmoid2(z));
    out[c] = tout[0];
  }
}

#endif  // backend selection

}  // namespace
}  // namespace detail

#if defined(PFM_SIMD_AVX2)

const char* backend_name() noexcept {
  return detail::use_avx2() ? "avx2" : "scalar";
}

bool vectorized() noexcept { return detail::use_avx2(); }

void vexp(const double* x, double* y, std::size_t n) noexcept {
  if (detail::use_avx2()) {
    detail::vexp_avx2(x, y, n);
  } else {
    detail::vexp_portable(x, y, n);
  }
}

void axpy(double a, const double* x, double* y, std::size_t n) noexcept {
  if (detail::use_avx2()) {
    detail::axpy_avx2(a, x, y, n);
  } else {
    detail::axpy_portable(a, x, y, n);
  }
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
  if (detail::use_avx2()) return detail::dot_avx2(a, b, n);
  return detail::dot_portable(a, b, n);
}

void squared_distance_soa(const double* features, std::size_t batch,
                          std::size_t dim, const double* center,
                          double* d2) noexcept {
  if (detail::use_avx2()) {
    detail::squared_distance_soa_avx2(features, batch, dim, center, d2);
  } else {
    detail::squared_distance_soa_portable(features, batch, dim, center, d2);
  }
}

void mixture_activation(const double* d2, std::size_t n, double w,
                        double two_w_sq, double step_scale, double mixture,
                        bool mixture_kernels, double* act) noexcept {
  if (detail::use_avx2()) {
    detail::mixture_activation_avx2(d2, n, w, two_w_sq, step_scale, mixture,
                                    mixture_kernels, act);
  } else {
    detail::mixture_activation_portable(d2, n, w, two_w_sq, step_scale,
                                        mixture, mixture_kernels, act);
  }
}

void score_sigmoid(double* inout, std::size_t n) noexcept {
  if (detail::use_avx2()) {
    detail::score_sigmoid_avx2(inout, n);
  } else {
    detail::score_sigmoid_portable(inout, n);
  }
}

void trend_sigmoid(const double* z_level, const double* z_slope, double* out,
                   std::size_t n) noexcept {
  if (detail::use_avx2()) {
    detail::trend_sigmoid_avx2(z_level, z_slope, out, n);
  } else {
    detail::trend_sigmoid_portable(z_level, z_slope, out, n);
  }
}

#elif defined(PFM_SIMD_NEON)

const char* backend_name() noexcept { return "neon"; }

bool vectorized() noexcept { return true; }

void vexp(const double* x, double* y, std::size_t n) noexcept {
  detail::vexp_neon(x, y, n);
}

void axpy(double a, const double* x, double* y, std::size_t n) noexcept {
  detail::axpy_neon(a, x, y, n);
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
  return detail::dot_neon(a, b, n);
}

void squared_distance_soa(const double* features, std::size_t batch,
                          std::size_t dim, const double* center,
                          double* d2) noexcept {
  detail::squared_distance_soa_neon(features, batch, dim, center, d2);
}

void mixture_activation(const double* d2, std::size_t n, double w,
                        double two_w_sq, double step_scale, double mixture,
                        bool mixture_kernels, double* act) noexcept {
  detail::mixture_activation_neon(d2, n, w, two_w_sq, step_scale, mixture,
                                  mixture_kernels, act);
}

void score_sigmoid(double* inout, std::size_t n) noexcept {
  detail::score_sigmoid_neon(inout, n);
}

void trend_sigmoid(const double* z_level, const double* z_slope, double* out,
                   std::size_t n) noexcept {
  detail::trend_sigmoid_neon(z_level, z_slope, out, n);
}

#else  // scalar backend

const char* backend_name() noexcept { return "scalar"; }

bool vectorized() noexcept { return false; }

void vexp(const double* x, double* y, std::size_t n) noexcept {
  detail::vexp_portable(x, y, n);
}

void axpy(double a, const double* x, double* y, std::size_t n) noexcept {
  detail::axpy_portable(a, x, y, n);
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
  return detail::dot_portable(a, b, n);
}

void squared_distance_soa(const double* features, std::size_t batch,
                          std::size_t dim, const double* center,
                          double* d2) noexcept {
  detail::squared_distance_soa_portable(features, batch, dim, center, d2);
}

void mixture_activation(const double* d2, std::size_t n, double w,
                        double two_w_sq, double step_scale, double mixture,
                        bool mixture_kernels, double* act) noexcept {
  detail::mixture_activation_portable(d2, n, w, two_w_sq, step_scale, mixture,
                                      mixture_kernels, act);
}

void score_sigmoid(double* inout, std::size_t n) noexcept {
  detail::score_sigmoid_portable(inout, n);
}

void trend_sigmoid(const double* z_level, const double* z_slope, double* out,
                   std::size_t n) noexcept {
  detail::trend_sigmoid_portable(z_level, z_slope, out, n);
}

#endif  // backend selection

}  // namespace pfm::num::simd
