// Portable reference lanes of the SIMD layer. This translation unit is
// compiled WITHOUT any vector ISA flags and with FP contraction off (see
// src/numerics/CMakeLists.txt), so each lane is the exact IEEE operation
// sequence the vector backends mirror instruction-for-instruction — the
// conformance suite pins vexp bits across backends against these.

#include "numerics/simd.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace pfm::num::simd::detail {

namespace {

/// 2^e for integer-valued e in the normal-exponent range [-1022, 1023],
/// assembled directly from the IEEE exponent field. vexp only feeds it
/// halves of the final scale (two-step scaling), which keeps both factors
/// comfortably inside that range even for denormal results.
inline double pow2_int(double e) noexcept {
  return std::bit_cast<double>((static_cast<std::int64_t>(e) + 1023) << 52);
}

}  // namespace

double exp_lane(double x) noexcept {
  if (std::isnan(x)) return x;
  if (x > kExpOverflow) return std::numeric_limits<double>::infinity();
  if (x < kExpUnderflow) return 0.0;
  // Range reduction: x = n*ln2 + r with |r| <= ln2/2, the hi/lo split
  // keeping r accurate to the last bit.
  const double n = std::floor(kLog2E * x + 0.5);
  double r = x - n * kLn2Hi;
  r = r - n * kLn2Lo;
  // Rational core on r^2 (Cephes expd): exp(r) = 1 + 2*px/(qx - px).
  const double xx = r * r;
  const double px = r * ((kExpP0 * xx + kExpP1) * xx + kExpP2);
  const double qx = ((kExpQ0 * xx + kExpQ1) * xx + kExpQ2) * xx + kExpQ3;
  const double e = px / (qx - px);
  const double poly = 1.0 + 2.0 * e;
  // Two-step 2^n scaling so n below the normal exponent range (denormal
  // results) still reconstructs by two in-range multiplies.
  const double a = std::floor(n * 0.5);
  const double b = n - a;
  return (poly * pow2_int(a)) * pow2_int(b);
}

double sigmoid_lane(double z) noexcept {
  // num::sigmoid's stable two-branch form with exp_lane in place of libm:
  // both branches share e = exp(-|z|).
  const double az = z >= 0.0 ? -z : z;
  const double e = exp_lane(az);
  const double denom = 1.0 + e;
  return z >= 0.0 ? 1.0 / denom : e / denom;
}

void vexp_portable(const double* x, double* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] = exp_lane(x[i]);
}

void axpy_portable(double a, const double* x, double* y,
                   std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

double dot_portable(const double* a, const double* b, std::size_t n) noexcept {
  // Fixed four-lane accumulation with a zero-padded trailing block; the
  // vector backends reduce their register lanes the same way.
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  double tail[kLanes] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t k = 0; i + k < n; ++k) tail[k] = a[i + k] * b[i + k];
  acc0 += tail[0];
  acc1 += tail[1];
  acc2 += tail[2];
  acc3 += tail[3];
  return (acc0 + acc1) + (acc2 + acc3);
}

void squared_distance_soa_portable(const double* features, std::size_t batch,
                                   std::size_t dim, const double* center,
                                   double* d2) noexcept {
  for (std::size_t c = 0; c < batch; ++c) d2[c] = 0.0;
  // j outer, c inner: per context the accumulation still runs j = 0..dim-1
  // in order, so d2 matches the scalar reference sweep bit-for-bit.
  for (std::size_t j = 0; j < dim; ++j) {
    const double cj = center[j];
    const double* col = features + j * batch;
    for (std::size_t c = 0; c < batch; ++c) {
      const double d = col[c] - cj;
      d2[c] += d * d;
    }
  }
}

void mixture_activation_portable(const double* d2, std::size_t n, double w,
                                 double two_w_sq, double step_scale,
                                 double mixture, bool mixture_kernels,
                                 double* act) noexcept {
  const double one_minus_m = 1.0 - mixture;
  for (std::size_t c = 0; c < n; ++c) {
    const double d = std::sqrt(d2[c]);
    const double gaussian = exp_lane(-d * d / two_w_sq);
    if (!mixture_kernels) {
      act[c] = gaussian;
      continue;
    }
    const double e = exp_lane((d - w) / step_scale);
    const double step = 1.0 / (1.0 + e);
    act[c] = mixture * gaussian + one_minus_m * step;
  }
}

void score_sigmoid_portable(double* inout, std::size_t n) noexcept {
  for (std::size_t c = 0; c < n; ++c) {
    inout[c] = sigmoid_lane(4.0 * (inout[c] - 0.5));
  }
}

void trend_sigmoid_portable(const double* z_level, const double* z_slope,
                            double* out, std::size_t n) noexcept {
  for (std::size_t c = 0; c < n; ++c) {
    out[c] = sigmoid_lane(0.7 * z_level[c] + 1.1 * z_slope[c]);
  }
}

}  // namespace pfm::num::simd::detail
