#include "numerics/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pfm::num {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("Matrix*: shape mismatch");
  }
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

std::vector<double> Matrix::apply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::apply: shape");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    y[i] = dot(row(i), x);
  }
  return y;
}

std::vector<double> Matrix::apply_left(std::span<const double> x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("Matrix::apply_left: shape");
  }
  std::vector<double> y(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    auto r = row(i);
    for (std::size_t j = 0; j < cols_; ++j) y[j] += xi * r[j];
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

double Matrix::norm_inf() const noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += std::abs((*this)(i, j));
    best = std::max(best, s);
  }
  return best;
}

double Matrix::max_abs() const noexcept {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const noexcept {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t i = 0; i < rows_; ++i) {
    os << "[ ";
    for (std::size_t j = 0; j < cols_; ++j) os << (*this)(i, j) << ' ';
    os << "]\n";
  }
  return os.str();
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: length");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

namespace {

// axpy is inside the batched scorers' hot closure (pfm-analyze
// hotpath); the length check stays inline, the throw does not.
// pfm-cold
[[noreturn]] void throw_axpy_length() {
  throw std::invalid_argument("axpy: length");
}

}  // namespace

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw_axpy_length();
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(std::span<const double> v) noexcept {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double sum(std::span<const double> v) noexcept {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

}  // namespace pfm::num
