#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace pfm::num {

/// Dense row-major matrix of doubles.
///
/// This is the workhorse type for the CTMC solver, least-squares fits and
/// the matrix exponential. It deliberately stays small: dimensions in this
/// library are tiny (model state spaces, kernel counts), so no attempt is
/// made at blocking or SIMD.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length. Throws std::invalid_argument otherwise.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  /// Diagonal matrix from a vector.
  static Matrix diagonal(std::span<const double> diag);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }
  bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Checked element access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// View of row r.
  std::span<const double> row(std::size_t r) const;
  std::span<double> row(std::size_t r);

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) noexcept { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) noexcept { return rhs *= s; }

  /// Matrix product; throws std::invalid_argument on shape mismatch.
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product; throws std::invalid_argument on shape mismatch.
  std::vector<double> apply(std::span<const double> x) const;

  /// x^T * M (left multiplication by a row vector).
  std::vector<double> apply_left(std::span<const double> x) const;

  Matrix transposed() const;

  /// Maximum absolute row sum (operator infinity-norm).
  double norm_inf() const noexcept;

  /// Largest absolute entry.
  double max_abs() const noexcept;

  /// True when shapes match and all entries differ by at most `tol`.
  bool approx_equal(const Matrix& other, double tol = 1e-12) const noexcept;

  /// Human-readable rendering, one row per line (for diagnostics and tests).
  std::string to_string(int precision = 6) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; throws std::invalid_argument on length mismatch.
double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x, elementwise; throws std::invalid_argument on length
/// mismatch. Each element update is the scalar statement
/// `y[i] += alpha * x[i]`, so a reduction assembled from per-row axpy
/// calls reproduces the equivalent per-element scalar loop bit-for-bit —
/// the batched scoring paths rely on that to stay conformant with the
/// reference path.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Euclidean norm.
double norm2(std::span<const double> v) noexcept;

/// Sum of elements.
double sum(std::span<const double> v) noexcept;

}  // namespace pfm::num
