#include "numerics/rng.hpp"

#include <numeric>
#include <stdexcept>

namespace pfm::num {

std::size_t Rng::categorical(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("categorical: empty");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("categorical: zero mass");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;  // round-off fallback
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace pfm::num
