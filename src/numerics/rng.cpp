#include "numerics/rng.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

// glibc's lgamma stores the sign of the result in the process-global
// `signgam` (a POSIX requirement), so every call is a write to shared
// state — a genuine data race once fleet nodes sample in parallel.
// libstdc++'s poisson_distribution calls lgamma both when the parameter
// block is built and inside the rejection loop for mean >= 12, which is
// exactly the path Rng::poisson exercises.  Nothing in this codebase
// reads signgam, so interpose the C symbol with the reentrant lgamma_r:
// identical return values (same algorithm, same rounding), the sign
// lands in a stack local, and the global write disappears.  The strong
// definition in the executable wins over libm's at link time.
extern "C" double lgamma(double x) noexcept {
  int sign = 0;
  return lgamma_r(x, &sign);
}

namespace pfm::num {

std::int64_t Rng::poisson(double mean) {
  using Dist = std::poisson_distribution<std::int64_t>;
  // Building the parameter block is the expensive part of a fresh draw
  // for large means (libstdc++ precomputes sqrt/log/lgamma constants), and
  // simulation fleets ask for the same mean over and over (every healthy
  // node sees the same offered load at a given tick). The block is a pure
  // function of the mean, so a direct-mapped thread-local cache keyed on
  // the mean's exact bit pattern hands back the identical block — and the
  // draw itself still runs through a fresh distribution object, so the
  // variate sequence is bit-for-bit what an uncached draw produces.
  struct Entry {
    double mean = -1.0;  // no valid mean is negative
    Dist::param_type param{1.0};
  };
  // 512 slots so one evaluation interval's worth of distinct means (tick
  // loop x request classes) survives long enough for sibling simulators
  // replaying the same time range to hit.
  thread_local std::array<Entry, 512> cache;
  const auto bits = std::bit_cast<std::uint64_t>(mean);
  Entry& e = cache[(bits * 0x9E3779B97F4A7C15ULL) >> 55];
  if (e.mean != mean) {
    e.param = Dist::param_type(mean);
    e.mean = mean;
  }
  Dist dist;  // fresh per call: no internal state carries across draws
  return dist(gen_, e.param);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("categorical: empty");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("categorical: zero mass");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;  // round-off fallback
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace pfm::num
