#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numerics/rng.hpp"

namespace pfm::num {

/// Result of a k-means clustering run.
struct KMeansResult {
  /// Row-major k x dim matrix of cluster centers.
  std::vector<double> centers;
  /// Cluster assignment per input point.
  std::vector<std::size_t> assignment;
  /// Final sum of squared distances.
  double inertia = 0.0;
  std::size_t k = 0;
  std::size_t dim = 0;

  std::span<const double> center(std::size_t i) const {
    return {centers.data() + i * dim, dim};
  }
};

/// Lloyd's k-means with k-means++ seeding.
///
/// `data` is row-major n x dim. Throws std::invalid_argument when k == 0,
/// dim == 0, the data shape is inconsistent, or there are fewer points
/// than clusters. Deterministic given the Rng seed.
KMeansResult kmeans(std::span<const double> data, std::size_t dim,
                    std::size_t k, Rng& rng, std::size_t max_iters = 100);

}  // namespace pfm::num
