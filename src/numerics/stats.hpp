#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pfm::num {

/// Streaming mean/variance accumulator (Welford's algorithm).
/// Numerically stable for long monitoring streams.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> v) noexcept;

/// Unbiased sample variance; 0 for fewer than two samples.
double variance(std::span<const double> v) noexcept;

double stddev(std::span<const double> v) noexcept;

/// Linear-interpolated quantile, q in [0,1]. Throws std::invalid_argument
/// for empty input or q outside [0,1]. Copies and sorts internally.
double quantile(std::span<const double> v, double q);

/// Pearson correlation coefficient; 0 when either side is constant.
/// Throws std::invalid_argument on length mismatch.
double pearson(std::span<const double> a, std::span<const double> b);

/// Ordinary least squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1].
  double r_squared = 0.0;
};

/// Fits a line through (x, y) pairs. Throws std::invalid_argument on
/// mismatch or fewer than two points.
LinearFit fit_line(std::span<const double> x, std::span<const double> y);

/// Min-max normalization parameters per feature column, learned on a
/// training matrix and applied to new rows. Constant columns map to 0.5.
class FeatureScaler {
 public:
  /// Learns per-column lo/hi from row-major `rows` x `cols` data.
  void fit(std::span<const double> data, std::size_t cols);

  /// Scales one row in place to [0,1]. Throws std::invalid_argument if the
  /// scaler was not fitted or the size differs.
  void transform(std::span<double> row) const;

  std::size_t cols() const noexcept { return lo_.size(); }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace pfm::num
