#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pfm::num {

/// L2-regularized binary logistic regression trained by full-batch gradient
/// descent with a simple backtracking step.
///
/// Used as the combiner of the stacked-generalization meta-learner
/// (Sect. 6 of the paper / Wolpert [34]): level-1 features are the scores of
/// the per-layer failure predictors, the label is "failure followed".
class LogisticRegression {
 public:
  struct Options {
    double l2 = 1e-4;          ///< ridge penalty on weights (not intercept)
    std::size_t max_iters = 500;
    double tolerance = 1e-8;   ///< stop on gradient norm below this
    double learning_rate = 1.0;
  };

  /// Trains on row-major n x dim features with labels in {0,1}.
  /// Throws std::invalid_argument on shape mismatch or empty data.
  void fit(std::span<const double> features, std::size_t dim,
           std::span<const int> labels, const Options& opts);
  void fit(std::span<const double> features, std::size_t dim,
           std::span<const int> labels) {
    fit(features, dim, labels, Options{});
  }

  /// Probability of class 1 for one feature row.
  /// Throws std::invalid_argument if not fitted or the size differs.
  double predict_probability(std::span<const double> x) const;

  bool fitted() const noexcept { return !weights_.empty(); }
  std::span<const double> weights() const noexcept { return weights_; }
  double intercept() const noexcept { return intercept_; }

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

/// Numerically safe logistic sigmoid.
double sigmoid(double z) noexcept;

}  // namespace pfm::num
