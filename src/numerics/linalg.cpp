#include "numerics/linalg.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pfm::num {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  if (!lu_.square()) {
    throw std::invalid_argument("LuDecomposition: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(lu_(i, k)) > best) {
        best = std::abs(lu_(i, k));
        pivot = i;
      }
    }
    if (best < 1e-300) {
      throw std::runtime_error("LuDecomposition: singular matrix");
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu_(k, j), lu_(pivot, j));
      }
      std::swap(perm_[k], perm_[pivot]);
      sign_ = -sign_;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) /= lu_(k, k);
      const double lik = lu_(i, k);
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= lik * lu_(k, j);
      }
    }
  }
}

std::vector<double> LuDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU solve: size mismatch");
  std::vector<double> x(n);
  // Forward substitution with permutation.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Backward substitution.
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= lu_(i, j) * x[j];
    x[i] = s / lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  if (b.rows() != lu_.rows()) {
    throw std::invalid_argument("LU solve: size mismatch");
  }
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const auto xj = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xj[i];
  }
  return x;
}

double LuDecomposition::determinant() const noexcept {
  double d = sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

std::vector<double> solve(const Matrix& a, std::span<const double> b) {
  return LuDecomposition(a).solve(b);
}

Matrix inverse(const Matrix& a) {
  return LuDecomposition(a).solve(Matrix::identity(a.rows()));
}

std::vector<double> least_squares(const Matrix& a, std::span<const double> b,
                                  double ridge) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("least_squares: size mismatch");
  }
  const Matrix at = a.transposed();
  Matrix ata = at * a;
  if (ridge > 0.0) {
    double trace = 0.0;
    for (std::size_t i = 0; i < ata.rows(); ++i) trace += ata(i, i);
    const double damp = ridge * (trace / static_cast<double>(ata.rows()) + 1.0);
    for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += damp;
  }
  const std::vector<double> atb = at.apply(b);
  return solve(ata, atb);
}

std::vector<double> stationary_distribution(const Matrix& q) {
  if (!q.square()) {
    throw std::invalid_argument("stationary_distribution: Q must be square");
  }
  const std::size_t n = q.rows();
  // Solve pi Q = 0 with sum(pi) = 1: replace the last column of Q^T's system
  // by the normalization constraint.
  Matrix a = q.transposed();
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  auto pi = solve(a, b);
  // Clamp tiny negative round-off.
  for (double& p : pi) {
    if (p < 0.0 && p > -1e-12) p = 0.0;
  }
  return pi;
}

}  // namespace pfm::num
