#include "numerics/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pfm::num {

OptimizeResult nelder_mead(
    const std::function<double(std::span<const double>)>& f,
    std::span<const double> x0, const NelderMeadOptions& opts) {
  const std::size_t n = x0.size();
  if (n == 0) throw std::invalid_argument("nelder_mead: empty start point");

  OptimizeResult res;
  auto eval = [&](std::span<const double> x) {
    ++res.evaluations;
    return f(x);
  };

  // Build initial simplex: x0 plus one perturbed vertex per dimension.
  std::vector<std::vector<double>> simplex(n + 1,
                                           std::vector<double>(x0.begin(), x0.end()));
  for (std::size_t i = 0; i < n; ++i) {
    simplex[i + 1][i] += opts.initial_step * (std::abs(x0[i]) + 0.1);
  }
  std::vector<double> fv(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fv[i] = eval(simplex[i]);

  std::vector<std::size_t> order(n + 1);
  std::vector<double> centroid(n), xr(n), xe(n), xc(n);

  constexpr double kAlpha = 1.0, kGamma = 2.0, kRho = 0.5, kSigma = 0.5;

  while (res.evaluations < opts.max_evaluations) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    if (fv[worst] - fv[best] < opts.f_tolerance) {
      res.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    // Reflection.
    for (std::size_t j = 0; j < n; ++j) {
      xr[j] = centroid[j] + kAlpha * (centroid[j] - simplex[worst][j]);
    }
    const double fr = eval(xr);
    if (fr < fv[best]) {
      // Expansion.
      for (std::size_t j = 0; j < n; ++j) {
        xe[j] = centroid[j] + kGamma * (xr[j] - centroid[j]);
      }
      const double fe = eval(xe);
      if (fe < fr) {
        simplex[worst] = xe;
        fv[worst] = fe;
      } else {
        simplex[worst] = xr;
        fv[worst] = fr;
      }
      continue;
    }
    if (fr < fv[second_worst]) {
      simplex[worst] = xr;
      fv[worst] = fr;
      continue;
    }
    // Contraction.
    for (std::size_t j = 0; j < n; ++j) {
      xc[j] = centroid[j] + kRho * (simplex[worst][j] - centroid[j]);
    }
    const double fc = eval(xc);
    if (fc < fv[worst]) {
      simplex[worst] = xc;
      fv[worst] = fc;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t j = 0; j < n; ++j) {
        simplex[i][j] =
            simplex[best][j] + kSigma * (simplex[i][j] - simplex[best][j]);
      }
      fv[i] = eval(simplex[i]);
    }
  }

  const auto arg =
      static_cast<std::size_t>(std::min_element(fv.begin(), fv.end()) - fv.begin());
  res.x = simplex[arg];
  res.value = fv[arg];
  return res;
}

}  // namespace pfm::num
