#include "numerics/distributions.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/stats.hpp"

namespace pfm::num {

double Exponential::pdf(double t) const noexcept {
  return t < 0.0 ? 0.0 : rate * std::exp(-rate * t);
}

double Exponential::cdf(double t) const noexcept {
  return t < 0.0 ? 0.0 : 1.0 - std::exp(-rate * t);
}

double Exponential::survival(double t) const noexcept {
  return t < 0.0 ? 1.0 : std::exp(-rate * t);
}

Exponential Exponential::mle(std::span<const double> samples) {
  if (samples.empty()) throw std::invalid_argument("Exponential::mle: empty");
  const double m = pfm::num::mean(samples);
  if (m <= 0.0) {
    throw std::invalid_argument("Exponential::mle: non-positive mean");
  }
  return Exponential{1.0 / m};
}

double Weibull::pdf(double t) const noexcept {
  if (t < 0.0) return 0.0;
  if (t == 0.0) return shape < 1.0 ? 0.0 : (shape == 1.0 ? 1.0 / scale : 0.0);
  const double z = t / scale;
  return (shape / scale) * std::pow(z, shape - 1.0) *
         std::exp(-std::pow(z, shape));
}

double Weibull::cdf(double t) const noexcept {
  return t <= 0.0 ? 0.0 : 1.0 - std::exp(-std::pow(t / scale, shape));
}

double Weibull::survival(double t) const noexcept {
  return t <= 0.0 ? 1.0 : std::exp(-std::pow(t / scale, shape));
}

double Weibull::hazard(double t) const noexcept {
  if (t <= 0.0) return shape < 1.0 ? 0.0 : (shape == 1.0 ? 1.0 / scale : 0.0);
  return (shape / scale) * std::pow(t / scale, shape - 1.0);
}

double Weibull::mean() const noexcept {
  return scale * std::tgamma(1.0 + 1.0 / shape);
}

Weibull Weibull::mle(std::span<const double> samples) {
  if (samples.size() < 2) {
    throw std::invalid_argument("Weibull::mle: need >= 2 samples");
  }
  for (double t : samples) {
    if (t <= 0.0) {
      throw std::invalid_argument("Weibull::mle: samples must be positive");
    }
  }
  const auto n = static_cast<double>(samples.size());
  double sum_log = 0.0;
  for (double t : samples) sum_log += std::log(t);
  const double mean_log = sum_log / n;

  // Solve g(k) = sum(t^k log t)/sum(t^k) - 1/k - mean_log = 0 by Newton.
  double k = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (double t : samples) {
      const double tk = std::pow(t, k);
      const double lt = std::log(t);
      s0 += tk;
      s1 += tk * lt;
      s2 += tk * lt * lt;
    }
    const double g = s1 / s0 - 1.0 / k - mean_log;
    const double gp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
    const double step = g / gp;
    k -= step;
    if (k <= 1e-6) k = 1e-6;
    if (std::abs(step) < 1e-10) {
      double s = 0.0;
      for (double t : samples) s += std::pow(t, k);
      const double lambda = std::pow(s / n, 1.0 / k);
      return Weibull{k, lambda};
    }
  }
  throw std::invalid_argument("Weibull::mle: did not converge");
}

double Weibull::log_likelihood(std::span<const double> samples) const {
  double ll = 0.0;
  for (double t : samples) {
    const double p = pdf(t);
    ll += std::log(p > 0.0 ? p : 1e-300);
  }
  return ll;
}

}  // namespace pfm::num
