#include "core/architecture.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfm::core {

std::string to_string(Layer layer) {
  switch (layer) {
    case Layer::kHardware:
      return "hardware";
    case Layer::kOperatingSystem:
      return "operating-system";
    case Layer::kVirtualMachineMonitor:
      return "virtual-machine-monitor";
    case Layer::kMiddleware:
      return "middleware";
    case Layer::kApplication:
      return "application";
  }
  return "unknown";
}

LayeredArchitecture::LayeredArchitecture()
    : layers_(kNumLayers), needs_retraining_(kNumLayers, false) {
  drift_.reserve(kNumLayers);
  for (std::size_t i = 0; i < kNumLayers; ++i) {
    drift_.emplace_back(/*delta=*/0.02, /*threshold=*/1.0);
  }
}

void LayeredArchitecture::set_layer(Layer layer, LayerPredictors predictors) {
  if (!predictors.symptom && !predictors.event) {
    throw std::invalid_argument(
        "LayeredArchitecture: layer needs at least one predictor");
  }
  layers_[static_cast<std::size_t>(layer)] = std::move(predictors);
}

bool LayeredArchitecture::has_layer(Layer layer) const noexcept {
  return layers_[static_cast<std::size_t>(layer)].has_value();
}

std::size_t LayeredArchitecture::num_active_layers() const noexcept {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.has_value() ? 1 : 0;
  return n;
}

std::optional<double> LayeredArchitecture::layer_score(
    Layer layer, const pred::SymptomContext& context,
    const mon::ErrorSequence& sequence) const {
  const auto& slot = layers_[static_cast<std::size_t>(layer)];
  if (!slot.has_value()) return std::nullopt;
  double score = 0.0;
  bool any = false;
  if (slot->symptom && !context.history.empty()) {
    score = std::max(score, slot->symptom->score(context));
    any = true;
  }
  if (slot->event) {
    score = std::max(score, slot->event->score(sequence));
    any = true;
  }
  if (!any) return std::nullopt;
  return score;
}

std::vector<double> LayeredArchitecture::all_scores(
    const pred::SymptomContext& context,
    const mon::ErrorSequence& sequence) const {
  std::vector<double> scores;
  scores.reserve(num_active_layers());
  for (std::size_t i = 0; i < kNumLayers; ++i) {
    const auto s = layer_score(static_cast<Layer>(i), context, sequence);
    if (s.has_value()) scores.push_back(*s);
  }
  return scores;
}

void LayeredArchitecture::fit_fusion(std::span<const double> scores,
                                     std::span<const int> labels) {
  const std::size_t k = num_active_layers();
  if (k == 0) {
    throw std::logic_error("LayeredArchitecture: no active layers");
  }
  fusion_.fit(scores, k, labels);
}

double LayeredArchitecture::fuse(const pred::SymptomContext& context,
                                 const mon::ErrorSequence& sequence) const {
  const auto scores = all_scores(context, sequence);
  if (scores.empty()) return 0.0;
  if (!fusion_.fitted()) {
    return *std::max_element(scores.begin(), scores.end());
  }
  return fusion_.combine(scores);
}

std::vector<LayerContribution> LayeredArchitecture::contributions() const {
  return contributions(std::span<const double>{});
}

std::vector<LayerContribution> LayeredArchitecture::contributions(
    std::span<const double> active_scores) const {
  if (!active_scores.empty() &&
      active_scores.size() != num_active_layers()) {
    throw std::invalid_argument(
        "contributions: active_scores must have one entry per active layer");
  }
  std::vector<LayerContribution> out;
  const auto w = fusion_.fitted() ? fusion_.weights() : std::span<const double>{};
  std::size_t active = 0;
  for (std::size_t i = 0; i < kNumLayers; ++i) {
    if (!layers_[i].has_value()) continue;
    LayerContribution c;
    c.layer = static_cast<Layer>(i);
    c.stacking_weight = active < w.size() ? w[active] : 0.0;
    c.last_score = active < active_scores.size() ? active_scores[active] : 0.0;
    out.push_back(c);
    ++active;
  }
  return out;
}

bool LayeredArchitecture::observe_layer_behavior(Layer layer,
                                                 double indicator) {
  const auto idx = static_cast<std::size_t>(layer);
  const bool drifted = drift_[idx].add(indicator);
  if (drifted) needs_retraining_[idx] = true;
  return drifted;
}

std::vector<Layer> LayeredArchitecture::take_retraining_requests() {
  std::vector<Layer> out;
  for (std::size_t i = 0; i < kNumLayers; ++i) {
    if (needs_retraining_[i]) {
      out.push_back(static_cast<Layer>(i));
      needs_retraining_[i] = false;
    }
  }
  return out;
}

}  // namespace pfm::core
