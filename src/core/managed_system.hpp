#pragma once

#include <cstdint>
#include <string>

#include "monitoring/dataset.hpp"
#include "prediction/predictor.hpp"

namespace pfm::core {

/// Health snapshot of one replicated unit (node, container, VM, ...) of a
/// managed system, as the Evaluate/Act components see it. Concrete backends
/// map their internal state onto these fields; everything above the
/// ManagedSystem boundary reasons only in these terms.
struct UnitHealth {
  /// Unit currently serves traffic (not down for restart/repair).
  bool available = true;
  /// Used-memory fraction in [0,1] (software-aging indicator).
  double memory_pressure = 0.0;
  /// Escalation stage of an active error cascade; 0 = none.
  int cascade_stage = 0;
  /// A resource-exhaustion fault (e.g. memory leak) is active.
  bool leak_active = false;
};

/// Backend-neutral downtime/dependability statistics of one managed
/// system. Mirrors what dependable-service backends track (cf. the SCP
/// simulator's per-run accounting) without naming any backend type.
struct SystemStats {
  std::int64_t total_requests = 0;
  std::int64_t violations = 0;  ///< requests slower than the service limit
  std::int64_t failures = 0;
  double downtime = 0.0;  ///< seconds of service downtime
  std::int64_t shed_requests = 0;
  std::int64_t preventive_restarts = 0;
  std::int64_t prepared_repairs = 0;
  std::int64_t unprepared_repairs = 0;
  double simulated = 0.0;  ///< seconds of operation covered so far

  /// Steady-state availability estimate: uptime / covered time.
  double availability() const noexcept {
    return simulated > 0.0 ? 1.0 - downtime / simulated : 1.0;
  }

  /// Fleet aggregation: counters add up, downtime/coverage accumulate.
  SystemStats& operator+=(const SystemStats& other) noexcept {
    total_requests += other.total_requests;
    violations += other.violations;
    failures += other.failures;
    downtime += other.downtime;
    shed_requests += other.shed_requests;
    preventive_restarts += other.preventive_restarts;
    prepared_repairs += other.prepared_repairs;
    unprepared_repairs += other.unprepared_repairs;
    simulated += other.simulated;
    return *this;
  }
};

/// Hint a managed system gives the adaptive monitoring scheduler (the
/// Fig. 11 blueprint's variable-rate monitoring): how urgently the system
/// wants its next Monitor/Evaluate visit. The scheduler keeps urgent
/// nodes on a dense per-tick cadence and backs quiet nodes off
/// exponentially; the hint only stretches or shrinks sampling gaps, so a
/// wrong hint costs detection latency, never correctness.
struct SchedulingHint {
  /// In [0, 1]; 1 = keep the node dense (the safe default for backends
  /// that do not model urgency), 0 = fully quiet.
  double urgency = 1.0;
};

/// The system under proactive fault management (the paper's "system" box
/// of Fig. 1): everything the Monitor-Evaluate-Act loop needs from the
/// managed platform, and nothing else.
///
/// The interface spans the four MEA contact points:
///  - *time stepping*: the controller advances the system in evaluation
///    intervals (now/step_to/finished/horizon);
///  - *monitoring*: the accumulated trace plus convenience accessors that
///    cut the predictors' symptom context and error sequence out of it;
///  - *unit health*: per-unit snapshots and offered-load figures for the
///    Act component's applicability checks and for diagnosis;
///  - *countermeasure hooks*: the Fig. 7 action families execute through
///    restart/shed/checkpoint/prepare.
///
/// Implementations live below core (e.g. runtime::ScpManagedSystem adapts
/// telecom::ScpSimulator); core itself depends on no concrete backend.
class ManagedSystem {
 public:
  virtual ~ManagedSystem() = default;

  virtual std::string name() const = 0;

  // --- time stepping --------------------------------------------------------

  /// Current time of the managed system, seconds.
  virtual double now() const = 0;
  /// End of the configured operation period (run() horizon).
  virtual double horizon() const = 0;
  virtual bool finished() const = 0;
  /// Advances the system up to time `t` (clamped to horizon()); must be
  /// idempotent for t <= now().
  virtual void step_to(double t) = 0;

  // --- monitoring (the Monitor phase's output) ------------------------------

  /// The monitoring trace accumulated so far: symptom samples, error
  /// events and failure log.
  virtual const mon::MonitoringDataset& trace() const = 0;

  /// Trailing window of at most `max_samples` symptom samples plus the
  /// failure history — the input of symptom-based predictors.
  pred::SymptomContext symptom_context(std::size_t max_samples) const {
    const auto samples = trace().samples();
    const std::size_t n = samples.size();
    const std::size_t first = n >= max_samples ? n - max_samples : 0;
    pred::SymptomContext ctx;
    ctx.history = samples.subspan(first, n - first);
    ctx.past_failures = trace().failures();
    return ctx;
  }

  /// Error events of the trailing data window — the input of event-based
  /// predictors.
  mon::ErrorSequence error_sequence(double data_window) const {
    mon::ErrorSequence seq;
    seq.end_time = now();
    seq.events = trace().events_in(seq.end_time - data_window, seq.end_time);
    return seq;
  }

  /// Adaptive-monitoring urgency of the next visit. Must not throw and
  /// must be cheap (called once per evaluation). The default keeps the
  /// system dense — correct for any backend that does not model urgency.
  virtual SchedulingHint scheduling_hint() const { return SchedulingHint{}; }

  // --- unit health / load ---------------------------------------------------

  virtual std::size_t num_units() const = 0;
  /// Snapshot of one unit at now(). Throws std::out_of_range for a bad
  /// index.
  virtual UnitHealth unit_health(std::size_t unit) const = 0;
  /// Mean offered arrival rate at now(), requests/second.
  virtual double offered_load() const = 0;
  /// Requests/second one unit can serve at nominal service time.
  virtual double unit_capacity() const = 0;
  /// True while the service as a whole is down (failure being repaired).
  virtual bool service_down() const = 0;

  // --- countermeasure hooks (the Act phase operates through these) ----------

  /// Preventive restart / rejuvenation of one unit (downtime avoidance:
  /// state clean-up). Throws std::out_of_range for a bad index.
  virtual void restart_unit(std::size_t unit) = 0;
  /// Lowers offered load by `fraction` for `duration` seconds.
  virtual void shed_load(double fraction, double duration) = 0;
  /// Saves a checkpoint now (bounds later recomputation).
  virtual void checkpoint() = 0;
  /// Prepares repair for an anticipated failure within `window` seconds
  /// (downtime minimization: warm spare + fresh checkpoint).
  virtual void prepare_for_failure(double window) = 0;
  /// Graceful-removal hook: the fleet runtime calls this once before a
  /// planned drain (elastic membership, preventive failover) so the
  /// system can persist state. The default takes a checkpoint.
  virtual void prepare_for_drain() { checkpoint(); }

  // --- downtime stats -------------------------------------------------------

  virtual SystemStats system_stats() const = 0;
};

}  // namespace pfm::core
