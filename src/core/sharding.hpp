#pragma once

#include <cstddef>
#include <stdexcept>

namespace pfm::core {

/// Deterministic contiguous-block partition of a fleet into shards: shard
/// `s` owns the global node indices [begin(s), end(s)). Blocks differ in
/// size by at most one node and the mapping is a pure function of
/// (num_nodes, num_shards), so every component that needs to translate
/// between global and (shard, local) addressing — the runtime's shard
/// controllers, fault plans, telemetry labels — derives the same answer
/// without sharing state.
struct ShardLayout {
  std::size_t num_nodes = 0;
  std::size_t num_shards = 1;

  ShardLayout() = default;
  ShardLayout(std::size_t nodes, std::size_t shards)
      : num_nodes(nodes), num_shards(shards) {
    validate();
  }

  void validate() const {
    if (num_shards == 0) {
      throw std::invalid_argument("ShardLayout: num_shards must be >= 1");
    }
    if (num_nodes < num_shards) {
      throw std::invalid_argument(
          "ShardLayout: need at least one node per shard");
    }
  }

  /// First global node index of shard `s`.
  std::size_t begin(std::size_t s) const noexcept {
    return s * num_nodes / num_shards;
  }
  /// One past the last global node index of shard `s`.
  std::size_t end(std::size_t s) const noexcept {
    return (s + 1) * num_nodes / num_shards;
  }
  std::size_t size(std::size_t s) const noexcept {
    return end(s) - begin(s);
  }

  /// Global index of local node `local` of shard `s`. Throws
  /// std::out_of_range for an address outside the layout.
  std::size_t global_index(std::size_t s, std::size_t local) const {
    if (s >= num_shards || local >= size(s)) {
      throw std::out_of_range("ShardLayout: bad (shard, node) address");
    }
    return begin(s) + local;
  }

  /// Shard owning global node `node`. Throws std::out_of_range when the
  /// node is outside the layout.
  std::size_t shard_of(std::size_t node) const {
    if (node >= num_nodes) {
      throw std::out_of_range("ShardLayout: node outside the layout");
    }
    // begin() is monotone in s; the closed-form guess can be off by at
    // most one block with uneven sizes, so nudge it into place.
    std::size_t s = node * num_shards / num_nodes;
    if (s >= num_shards) s = num_shards - 1;
    while (node < begin(s)) --s;
    while (node >= end(s)) ++s;
    return s;
  }

  /// Local index of global node `node` inside its owning shard.
  std::size_t local_index(std::size_t node) const {
    return node - begin(shard_of(node));
  }
};

}  // namespace pfm::core
