#pragma once

#include <array>
#include <memory>
#include <vector>

#include "actions/selection.hpp"
#include "core/managed_system.hpp"
#include "obs/observability.hpp"
#include "prediction/predictor.hpp"

namespace pfm::core {

/// Bounded-retry / exponential-backoff policy for countermeasure
/// execution. A throwing action is retried up to `max_attempts` total
/// tries within the same warning; when all attempts fail, the action's
/// kind is backed off in *simulated* time (initial * 2^consecutive
/// abandoned executions, capped at `backoff_max`) before it may run
/// again, and the failure is absorbed into the stats instead of
/// propagating. Actions that never throw see none of this — the
/// fault-free path is bit-identical to a policy-free loop.
struct ActionRetryPolicy {
  std::size_t max_attempts = 3;  ///< total tries per execution; >= 1
  double backoff_initial = 120.0;  ///< seconds, doubles per failure
  double backoff_max = 3600.0;
  /// Propagate the last exception instead of absorbing it (pre-hardening
  /// behavior; the fault-injection bench uses this as its "no hardening"
  /// arm).
  bool rethrow = false;
};

/// Configuration of the Monitor-Evaluate-Act loop.
struct MeaConfig {
  /// Seconds between MEA evaluations.
  double evaluation_interval = 60.0;
  /// Warning threshold on the combined failure-proneness score.
  double warning_threshold = 0.6;
  /// Window geometry shared with the predictors.
  pred::WindowGeometry windows;
  /// Trailing samples handed to symptom predictors.
  std::size_t context_samples = 20;
  /// Minimum seconds between two executions of the same action kind
  /// (control-loop damping: the paper warns about oscillations, Sect. 2).
  double action_cooldown = 600.0;
  /// Master switches for the two Fig. 7 action families — the Table 1 /
  /// E9 experiment toggles these.
  bool enable_avoidance = true;
  bool enable_minimization = true;
  /// Failure handling for countermeasure execution.
  ActionRetryPolicy retry;
};

/// Counters of one MEA run. The fault counters stay zero unless a
/// component actually misbehaves.
struct MeaStats {
  std::size_t evaluations = 0;
  std::size_t warnings = 0;
  std::array<std::size_t, act::kNumActionKinds> actions_by_kind{};
  std::size_t scores_sanitized = 0;   ///< non-finite scores excluded
  std::size_t action_faults = 0;      ///< execution attempts that threw
  std::size_t action_retries = 0;     ///< re-attempts after a failed try
  std::size_t actions_abandoned = 0;  ///< executions that exhausted retries

  std::size_t total_actions() const noexcept {
    std::size_t s = 0;
    for (auto a : actions_by_kind) s += a;
    return s;
  }

  MeaStats& operator+=(const MeaStats& other) noexcept {
    evaluations += other.evaluations;
    warnings += other.warnings;
    for (std::size_t k = 0; k < actions_by_kind.size(); ++k) {
      actions_by_kind[k] += other.actions_by_kind[k];
    }
    scores_sanitized += other.scores_sanitized;
    action_faults += other.action_faults;
    action_retries += other.action_retries;
    actions_abandoned += other.actions_abandoned;
    return *this;
  }
};

/// The Act component (Fig. 1): owns the registered countermeasures, the
/// per-kind cooldown clocks and the objective-function selection policy.
/// Extracted from MeaController so a fleet controller can keep one engine
/// per managed node while sharing predictors across the fleet.
class ActEngine {
 public:
  ActEngine() {
    last_action_time_.fill(-1e18);
    backoff_until_.fill(-1e18);
  }

  /// Registers a countermeasure. Throws on nullptr.
  void add_action(std::unique_ptr<act::Action> action);

  bool empty() const noexcept { return actions_.empty(); }

  /// Responds to one failure warning of confidence `score`:
  ///  - downtime minimization: every applicable, cooled-down action runs
  ///    (preparing for a failure is cheap and safe);
  ///  - downtime avoidance: the objective function picks the single most
  ///    effective applicable action.
  /// Executed actions are counted into `stats` and stamp their cooldown.
  /// Throwing actions follow `config.retry` (bounded retries, then
  /// exponential backoff on the action's kind, failure absorbed into
  /// `stats` unless the policy says rethrow).
  void act(ManagedSystem& system, double score, const MeaConfig& config,
           MeaStats& stats);

  /// Simulated-time instant before which `kind` is backed off (-inf when
  /// it never failed); exposed for the retry-schedule tests.
  double backoff_until(act::ActionKind kind) const noexcept {
    return backoff_until_[static_cast<std::size_t>(kind)];
  }

  /// Attaches the engine to an observability hub: executions, retries
  /// and abandonments are counted fleet-wide, and Act spans are recorded
  /// on `track` (the owning node's trace lane). Must be called before
  /// the engine runs on a pool worker — counter registration is not a
  /// hot-path operation. Null detaches.
  void set_observability(obs::Observability* hub, std::uint32_t track);

  /// Attaches the engine to the flight recorder's scope of `node`:
  /// executions, retries and abandonments land in the node's ring so a
  /// post-mortem shows what the Act stage did right before an incident.
  /// Null detaches.
  void set_flight(obs::FlightRecorder* flight, std::size_t node);

 private:
  /// Runs one action under the retry policy; true on success.
  bool try_execute(act::Action& action, ManagedSystem& system, double score,
                   const MeaConfig& config, MeaStats& stats);

  obs::TraceRecorder* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  obs::FlightRecorder* flight_ = nullptr;
  std::size_t flight_node_ = 0;
  obs::Counter* executed_total_ = nullptr;
  obs::Counter* faults_total_ = nullptr;
  obs::Counter* retries_total_ = nullptr;
  obs::Counter* abandoned_total_ = nullptr;

  std::vector<std::unique_ptr<act::Action>> actions_;
  act::ActionSelector selector_;
  std::array<double, act::kNumActionKinds> last_action_time_{};
  std::array<double, act::kNumActionKinds> backoff_until_{};
  std::array<std::size_t, act::kNumActionKinds> abandoned_streak_{};
};

/// The Monitor-Evaluate-Act control loop (Fig. 1) driving one managed
/// system:
///  - Monitor: the system continuously appends symptom samples and error
///    events to its trace;
///  - Evaluate: at each evaluation instant the registered (pre-trained)
///    predictors score the current context; the combined score is their
///    maximum (a warning from any layer is a warning);
///  - Act: on a warning, downtime minimization always prepares repair,
///    and the objective-function selector picks the best applicable
///    avoidance action, subject to per-kind cooldowns.
class MeaController {
 public:
  MeaController(ManagedSystem& system, MeaConfig config);

  /// Registers a trained symptom predictor (one per architecture layer).
  void add_symptom_predictor(std::shared_ptr<const pred::SymptomPredictor> p);

  /// Registers a trained event predictor.
  void add_event_predictor(std::shared_ptr<const pred::EventPredictor> p);

  /// Registers a countermeasure.
  void add_action(std::unique_ptr<act::Action> action);

  /// Runs the loop until the managed system's horizon.
  void run();

  /// Runs until time `t`.
  void run_until(double t);

  const MeaStats& stats() const noexcept { return stats_; }

  /// Combined failure-proneness at the current instant (exposed for tests
  /// and examples). Non-finite predictor scores are excluded from the max
  /// reduce; when `sanitized` is non-null it is incremented per excluded
  /// score.
  double evaluate_now(std::size_t* sanitized = nullptr) const;

  /// Attaches the loop (and its Act engine) to an observability hub:
  /// evaluations and warnings become counters, each evaluation records a
  /// kEvaluation span and each warning a kWarning span on track 0.
  void set_observability(obs::Observability* hub);

 private:
  obs::Observability* obs_ = nullptr;
  obs::Counter* evaluations_total_ = nullptr;
  obs::Counter* warnings_total_ = nullptr;
  ManagedSystem* system_;
  MeaConfig config_;
  std::vector<std::shared_ptr<const pred::SymptomPredictor>> symptom_;
  std::vector<std::shared_ptr<const pred::EventPredictor>> event_;
  ActEngine engine_;
  MeaStats stats_;
};

}  // namespace pfm::core
