#pragma once

#include <array>
#include <memory>
#include <vector>

#include "actions/selection.hpp"
#include "prediction/predictor.hpp"
#include "telecom/simulator.hpp"

namespace pfm::core {

/// Configuration of the Monitor-Evaluate-Act loop.
struct MeaConfig {
  /// Seconds between MEA evaluations.
  double evaluation_interval = 60.0;
  /// Warning threshold on the combined failure-proneness score.
  double warning_threshold = 0.6;
  /// Window geometry shared with the predictors.
  pred::WindowGeometry windows;
  /// Trailing samples handed to symptom predictors.
  std::size_t context_samples = 20;
  /// Minimum seconds between two executions of the same action kind
  /// (control-loop damping: the paper warns about oscillations, Sect. 2).
  double action_cooldown = 600.0;
  /// Master switches for the two Fig. 7 action families — the Table 1 /
  /// E9 experiment toggles these.
  bool enable_avoidance = true;
  bool enable_minimization = true;
};

/// Counters of one MEA run.
struct MeaStats {
  std::size_t evaluations = 0;
  std::size_t warnings = 0;
  std::array<std::size_t, act::kNumActionKinds> actions_by_kind{};

  std::size_t total_actions() const noexcept {
    std::size_t s = 0;
    for (auto a : actions_by_kind) s += a;
    return s;
  }
};

/// The Monitor-Evaluate-Act control loop (Fig. 1) driving the simulated
/// SCP:
///  - Monitor: the simulator continuously appends symptom samples and
///    error events to its trace;
///  - Evaluate: at each evaluation instant the registered (pre-trained)
///    predictors score the current context; the combined score is their
///    maximum (a warning from any layer is a warning);
///  - Act: on a warning, downtime minimization always prepares repair,
///    and the objective-function selector picks the best applicable
///    avoidance action, subject to per-kind cooldowns.
class MeaController {
 public:
  MeaController(telecom::ScpSimulator& system, MeaConfig config);

  /// Registers a trained symptom predictor (one per architecture layer).
  void add_symptom_predictor(std::shared_ptr<const pred::SymptomPredictor> p);

  /// Registers a trained event predictor.
  void add_event_predictor(std::shared_ptr<const pred::EventPredictor> p);

  /// Registers a countermeasure.
  void add_action(std::unique_ptr<act::Action> action);

  /// Runs the loop until the simulation finishes.
  void run();

  /// Runs until time `t`.
  void run_until(double t);

  const MeaStats& stats() const noexcept { return stats_; }

  /// Combined failure-proneness at the current instant (exposed for tests
  /// and examples).
  double evaluate_now() const;

 private:
  void act(double score);

  telecom::ScpSimulator* system_;
  MeaConfig config_;
  std::vector<std::shared_ptr<const pred::SymptomPredictor>> symptom_;
  std::vector<std::shared_ptr<const pred::EventPredictor>> event_;
  std::vector<std::unique_ptr<act::Action>> actions_;
  act::ActionSelector selector_;
  std::array<double, act::kNumActionKinds> last_action_time_{};
  MeaStats stats_;
};

}  // namespace pfm::core
