#pragma once

#include <array>
#include <memory>
#include <vector>

#include "actions/selection.hpp"
#include "core/managed_system.hpp"
#include "prediction/predictor.hpp"

namespace pfm::core {

/// Configuration of the Monitor-Evaluate-Act loop.
struct MeaConfig {
  /// Seconds between MEA evaluations.
  double evaluation_interval = 60.0;
  /// Warning threshold on the combined failure-proneness score.
  double warning_threshold = 0.6;
  /// Window geometry shared with the predictors.
  pred::WindowGeometry windows;
  /// Trailing samples handed to symptom predictors.
  std::size_t context_samples = 20;
  /// Minimum seconds between two executions of the same action kind
  /// (control-loop damping: the paper warns about oscillations, Sect. 2).
  double action_cooldown = 600.0;
  /// Master switches for the two Fig. 7 action families — the Table 1 /
  /// E9 experiment toggles these.
  bool enable_avoidance = true;
  bool enable_minimization = true;
};

/// Counters of one MEA run.
struct MeaStats {
  std::size_t evaluations = 0;
  std::size_t warnings = 0;
  std::array<std::size_t, act::kNumActionKinds> actions_by_kind{};

  std::size_t total_actions() const noexcept {
    std::size_t s = 0;
    for (auto a : actions_by_kind) s += a;
    return s;
  }

  MeaStats& operator+=(const MeaStats& other) noexcept {
    evaluations += other.evaluations;
    warnings += other.warnings;
    for (std::size_t k = 0; k < actions_by_kind.size(); ++k) {
      actions_by_kind[k] += other.actions_by_kind[k];
    }
    return *this;
  }
};

/// The Act component (Fig. 1): owns the registered countermeasures, the
/// per-kind cooldown clocks and the objective-function selection policy.
/// Extracted from MeaController so a fleet controller can keep one engine
/// per managed node while sharing predictors across the fleet.
class ActEngine {
 public:
  ActEngine() { last_action_time_.fill(-1e18); }

  /// Registers a countermeasure. Throws on nullptr.
  void add_action(std::unique_ptr<act::Action> action);

  bool empty() const noexcept { return actions_.empty(); }

  /// Responds to one failure warning of confidence `score`:
  ///  - downtime minimization: every applicable, cooled-down action runs
  ///    (preparing for a failure is cheap and safe);
  ///  - downtime avoidance: the objective function picks the single most
  ///    effective applicable action.
  /// Executed actions are counted into `stats` and stamp their cooldown.
  void act(ManagedSystem& system, double score, const MeaConfig& config,
           MeaStats& stats);

 private:
  std::vector<std::unique_ptr<act::Action>> actions_;
  act::ActionSelector selector_;
  std::array<double, act::kNumActionKinds> last_action_time_{};
};

/// The Monitor-Evaluate-Act control loop (Fig. 1) driving one managed
/// system:
///  - Monitor: the system continuously appends symptom samples and error
///    events to its trace;
///  - Evaluate: at each evaluation instant the registered (pre-trained)
///    predictors score the current context; the combined score is their
///    maximum (a warning from any layer is a warning);
///  - Act: on a warning, downtime minimization always prepares repair,
///    and the objective-function selector picks the best applicable
///    avoidance action, subject to per-kind cooldowns.
class MeaController {
 public:
  MeaController(ManagedSystem& system, MeaConfig config);

  /// Registers a trained symptom predictor (one per architecture layer).
  void add_symptom_predictor(std::shared_ptr<const pred::SymptomPredictor> p);

  /// Registers a trained event predictor.
  void add_event_predictor(std::shared_ptr<const pred::EventPredictor> p);

  /// Registers a countermeasure.
  void add_action(std::unique_ptr<act::Action> action);

  /// Runs the loop until the managed system's horizon.
  void run();

  /// Runs until time `t`.
  void run_until(double t);

  const MeaStats& stats() const noexcept { return stats_; }

  /// Combined failure-proneness at the current instant (exposed for tests
  /// and examples).
  double evaluate_now() const;

 private:
  ManagedSystem* system_;
  MeaConfig config_;
  std::vector<std::shared_ptr<const pred::SymptomPredictor>> symptom_;
  std::vector<std::shared_ptr<const pred::EventPredictor>> event_;
  ActEngine engine_;
  MeaStats stats_;
};

}  // namespace pfm::core
