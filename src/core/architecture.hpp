#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "prediction/changepoint.hpp"
#include "prediction/meta.hpp"
#include "prediction/predictor.hpp"

namespace pfm::core {

/// System layers of the Fig. 11 architectural blueprint. Each layer runs
/// its own failure predictor tailored to its data ("a predictor on
/// hardware level has to process a large amount of data but failure
/// patterns are not extremely complex, whereas an application level
/// predictor might employ complex pattern recognition").
enum class Layer : std::uint8_t {
  kHardware = 0,
  kOperatingSystem = 1,
  kVirtualMachineMonitor = 2,
  kMiddleware = 3,
  kApplication = 4
};
inline constexpr std::size_t kNumLayers = 5;

std::string to_string(Layer layer);

/// A layer's predictor slot: either a symptom predictor, an event
/// predictor, or both (they are combined by max within the layer).
struct LayerPredictors {
  std::shared_ptr<const pred::SymptomPredictor> symptom;
  std::shared_ptr<const pred::EventPredictor> event;
};

/// Per-layer contribution to the fused decision — the blueprint's
/// "translucency": insight into dependability-relevant behavior at every
/// level while the MEA methods run.
struct LayerContribution {
  Layer layer = Layer::kHardware;
  double stacking_weight = 0.0;  ///< weight learned by the meta-learner
  double last_score = 0.0;       ///< raw score supplied by the caller
};

/// The cross-layer prediction fabric of Fig. 11: per-layer predictors
/// whose scores are fused by stacked generalization into one system-level
/// failure-proneness value, plus a change-point detector per layer that
/// flags when the layer's behavior shifted and its predictor should be
/// retrained (Sect. 6).
///
/// The Act component must span all layers (the paper's VMM-migration vs.
/// hardware-restart example); fuse() gives it the single consistent
/// system-level view it needs.
///
/// Thread safety: the const scoring methods (layer_score, all_scores,
/// fuse, contributions) mutate no state and may run concurrently from
/// many threads against one instance, as the fleet runtime does.
/// Mutators (set_layer, fit_fusion, observe_layer_behavior,
/// take_retraining_requests) require external synchronization.
class LayeredArchitecture {
 public:
  LayeredArchitecture();

  /// Installs predictors for a layer (replacing earlier ones).
  void set_layer(Layer layer, LayerPredictors predictors);

  bool has_layer(Layer layer) const noexcept;
  std::size_t num_active_layers() const noexcept;

  /// Raw score of one layer for the given context/sequence; layers
  /// without a predictor return nullopt.
  std::optional<double> layer_score(Layer layer,
                                    const pred::SymptomContext& context,
                                    const mon::ErrorSequence& sequence) const;

  /// Scores every active layer in layer order.
  std::vector<double> all_scores(const pred::SymptomContext& context,
                                 const mon::ErrorSequence& sequence) const;

  /// Trains the meta-learner on out-of-sample layer scores: `scores` is
  /// row-major n x num_active_layers() in layer order.
  void fit_fusion(std::span<const double> scores, std::span<const int> labels);

  /// Fused system-level failure proneness. Falls back to the maximum of
  /// the layer scores when the meta-learner is not fitted.
  double fuse(const pred::SymptomContext& context,
              const mon::ErrorSequence& sequence) const;

  /// Translucency report over active layers (weights only; last_score
  /// stays 0). Scoring methods are pure, so the architecture keeps no
  /// "most recent score" state — pass the scores you computed to the
  /// overload below to embed them in the report.
  std::vector<LayerContribution> contributions() const;

  /// Translucency report with the caller's scores (in active-layer order,
  /// as produced by all_scores()) filled into last_score. Throws
  /// std::invalid_argument when a non-empty `active_scores` does not have
  /// one entry per active layer.
  std::vector<LayerContribution> contributions(
      std::span<const double> active_scores) const;

  /// Feeds one observation of a layer's behavior indicator (e.g., its
  /// prediction error) to that layer's change-point detector; returns true
  /// when the layer drifted and should be retrained.
  bool observe_layer_behavior(Layer layer, double indicator);

  /// Layers flagged for retraining since the last call (clears the flags).
  std::vector<Layer> take_retraining_requests();

 private:
  std::vector<std::optional<LayerPredictors>> layers_;
  pred::StackedGeneralization fusion_;
  std::vector<pred::PageHinkley> drift_;
  std::vector<bool> needs_retraining_;
};

}  // namespace pfm::core
