#include "core/diagnosis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pfm::core {

Diagnoser::Diagnoser(Config config) : config_(config) {
  if (config_.evidence_window <= 0.0) {
    throw std::invalid_argument("Diagnoser: evidence_window > 0");
  }
}

std::vector<Suspicion> Diagnoser::diagnose(
    const ManagedSystem& system) const {
  const double now = system.now();
  const auto& trace = system.trace();
  const std::size_t n = system.num_units();

  // Channel 1: severity-weighted error-report intensity per component.
  std::vector<double> report_weight(n, 0.0);
  for (const auto& e :
       trace.events_in(now - config_.evidence_window, now)) {
    if (e.component < 0 || static_cast<std::size_t>(e.component) >= n) {
      continue;
    }
    report_weight[static_cast<std::size_t>(e.component)] +=
        static_cast<double>(e.severity);
  }
  const double max_report =
      std::max(*std::max_element(report_weight.begin(), report_weight.end()),
               1.0);

  std::vector<Suspicion> out;
  for (std::size_t i = 0; i < n; ++i) {
    const auto unit = system.unit_health(i);
    double score = 0.45 * report_weight[i] / max_report;
    std::ostringstream evidence;
    if (report_weight[i] > 0.0) {
      evidence << "error reports (weight " << report_weight[i] << ")";
    }
    // Channel 2: resource-state anomaly.
    if (unit.memory_pressure > config_.pressure_threshold) {
      score += 0.3 * std::min(
                         (unit.memory_pressure - config_.pressure_threshold) /
                             (1.0 - config_.pressure_threshold),
                         1.0);
      if (evidence.tellp() > 0) evidence << "; ";
      evidence << "memory pressure " << unit.memory_pressure;
    }
    // Channel 3: active degradation (cascade in progress).
    if (unit.cascade_stage >= 1) {
      score += 0.25 * static_cast<double>(std::min(unit.cascade_stage, 3)) /
               3.0;
      if (evidence.tellp() > 0) evidence << "; ";
      evidence << "error cascade stage " << unit.cascade_stage;
    }
    if (score > 0.05) {
      out.push_back({static_cast<std::int32_t>(i), std::min(score, 1.0),
                     evidence.str()});
    }
  }

  // System-wide suspicion: offered load beyond capacity is a workload
  // problem, not a component fault.
  std::size_t alive = 0;
  for (std::size_t i = 0; i < n; ++i) {
    alive += system.unit_health(i).available ? 1 : 0;
  }
  if (alive > 0) {
    const double per_node =
        system.offered_load() / static_cast<double>(alive);
    const double util = per_node / system.unit_capacity();
    if (util > config_.overload_threshold) {
      std::ostringstream evidence;
      evidence << "offered load " << util << " of capacity";
      out.push_back(
          {-1, std::min(0.3 + (util - config_.overload_threshold), 1.0),
           evidence.str()});
    }
  }

  std::sort(out.begin(), out.end(), [](const Suspicion& a, const Suspicion& b) {
    return a.score > b.score;
  });
  return out;
}

std::int32_t Diagnoser::prime_suspect(
    const ManagedSystem& system) const {
  const auto suspects = diagnose(system);
  return suspects.empty() ? -1 : suspects.front().component;
}

}  // namespace pfm::core
