#include "core/mea.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfm::core {

void ActEngine::add_action(std::unique_ptr<act::Action> action) {
  if (!action) throw std::invalid_argument("ActEngine: null action");
  actions_.push_back(std::move(action));
}

void ActEngine::act(ManagedSystem& system, double score,
                    const MeaConfig& config, MeaStats& stats) {
  const double now = system.now();
  auto cooled_down = [&](act::ActionKind kind) {
    return now - last_action_time_[static_cast<std::size_t>(kind)] >=
           config.action_cooldown;
  };
  auto record = [&](act::ActionKind kind) {
    last_action_time_[static_cast<std::size_t>(kind)] = now;
    ++stats.actions_by_kind[static_cast<std::size_t>(kind)];
  };

  // Downtime minimization: preparing for an anticipated failure is cheap
  // and safe, so it accompanies every warning (Table 1: "prepare repair").
  if (config.enable_minimization) {
    for (const auto& a : actions_) {
      if (a->goal() != act::ActionGoal::kDowntimeMinimization) continue;
      if (!a->applicable(system) || !cooled_down(a->kind())) continue;
      a->execute(system, score);
      record(a->kind());
    }
  }

  // Downtime avoidance: pick the single most effective applicable action
  // by the objective function.
  if (config.enable_avoidance) {
    act::Action* best = nullptr;
    double best_score = 0.0;
    for (const auto& a : actions_) {
      if (a->goal() != act::ActionGoal::kDowntimeAvoidance) continue;
      if (!cooled_down(a->kind())) continue;
      if (!a->applicable(system)) continue;
      const double s = act::objective_score(*a, score, selector_.weights());
      if (s > best_score) {
        best_score = s;
        best = a.get();
      }
    }
    if (best != nullptr) {
      best->execute(system, score);
      record(best->kind());
    }
  }
}

MeaController::MeaController(ManagedSystem& system, MeaConfig config)
    : system_(&system), config_(std::move(config)) {
  config_.windows.validate();
  if (config_.evaluation_interval <= 0.0) {
    throw std::invalid_argument("MeaController: evaluation interval > 0");
  }
  if (config_.warning_threshold < 0.0 || config_.warning_threshold > 1.0) {
    throw std::invalid_argument("MeaController: threshold in [0,1]");
  }
}

void MeaController::add_symptom_predictor(
    std::shared_ptr<const pred::SymptomPredictor> p) {
  if (!p) throw std::invalid_argument("MeaController: null predictor");
  symptom_.push_back(std::move(p));
}

void MeaController::add_event_predictor(
    std::shared_ptr<const pred::EventPredictor> p) {
  if (!p) throw std::invalid_argument("MeaController: null predictor");
  event_.push_back(std::move(p));
}

void MeaController::add_action(std::unique_ptr<act::Action> action) {
  engine_.add_action(std::move(action));
}

double MeaController::evaluate_now() const {
  double combined = 0.0;

  if (!symptom_.empty() && !system_->trace().samples().empty()) {
    const auto ctx = system_->symptom_context(config_.context_samples);
    for (const auto& p : symptom_) {
      combined = std::max(combined, p->score(ctx));
    }
  }
  if (!event_.empty()) {
    const auto seq = system_->error_sequence(config_.windows.data_window);
    for (const auto& p : event_) {
      combined = std::max(combined, p->score(seq));
    }
  }
  return combined;
}

void MeaController::run_until(double t) {
  while (!system_->finished() && system_->now() < t) {
    system_->step_to(
        std::min(system_->now() + config_.evaluation_interval, t));
    ++stats_.evaluations;
    const double score = evaluate_now();
    if (score >= config_.warning_threshold) {
      ++stats_.warnings;
      engine_.act(*system_, score, config_, stats_);
    }
  }
}

void MeaController::run() { run_until(system_->horizon()); }

}  // namespace pfm::core
