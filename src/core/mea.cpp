#include "core/mea.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfm::core {

MeaController::MeaController(telecom::ScpSimulator& system, MeaConfig config)
    : system_(&system), config_(std::move(config)) {
  config_.windows.validate();
  if (config_.evaluation_interval <= 0.0) {
    throw std::invalid_argument("MeaController: evaluation interval > 0");
  }
  if (config_.warning_threshold < 0.0 || config_.warning_threshold > 1.0) {
    throw std::invalid_argument("MeaController: threshold in [0,1]");
  }
  last_action_time_.fill(-1e18);
}

void MeaController::add_symptom_predictor(
    std::shared_ptr<const pred::SymptomPredictor> p) {
  if (!p) throw std::invalid_argument("MeaController: null predictor");
  symptom_.push_back(std::move(p));
}

void MeaController::add_event_predictor(
    std::shared_ptr<const pred::EventPredictor> p) {
  if (!p) throw std::invalid_argument("MeaController: null predictor");
  event_.push_back(std::move(p));
}

void MeaController::add_action(std::unique_ptr<act::Action> action) {
  if (!action) throw std::invalid_argument("MeaController: null action");
  actions_.push_back(std::move(action));
}

double MeaController::evaluate_now() const {
  const auto& trace = system_->trace();
  const double now = system_->now();
  double combined = 0.0;

  if (!symptom_.empty() && !trace.samples().empty()) {
    const auto samples = trace.samples();
    const std::size_t n = samples.size();
    const std::size_t first =
        n >= config_.context_samples ? n - config_.context_samples : 0;
    pred::SymptomContext ctx;
    ctx.history = samples.subspan(first, n - first);
    ctx.past_failures = trace.failures();
    for (const auto& p : symptom_) {
      combined = std::max(combined, p->score(ctx));
    }
  }
  if (!event_.empty()) {
    mon::ErrorSequence seq;
    seq.events = trace.events_in(now - config_.windows.data_window, now);
    seq.end_time = now;
    for (const auto& p : event_) {
      combined = std::max(combined, p->score(seq));
    }
  }
  return combined;
}

void MeaController::act(double score) {
  const double now = system_->now();
  auto cooled_down = [&](act::ActionKind kind) {
    return now - last_action_time_[static_cast<std::size_t>(kind)] >=
           config_.action_cooldown;
  };
  auto record = [&](act::ActionKind kind) {
    last_action_time_[static_cast<std::size_t>(kind)] = now;
    ++stats_.actions_by_kind[static_cast<std::size_t>(kind)];
  };

  // Downtime minimization: preparing for an anticipated failure is cheap
  // and safe, so it accompanies every warning (Table 1: "prepare repair").
  if (config_.enable_minimization) {
    for (const auto& a : actions_) {
      if (a->goal() != act::ActionGoal::kDowntimeMinimization) continue;
      if (!a->applicable(*system_) || !cooled_down(a->kind())) continue;
      a->execute(*system_, score);
      record(a->kind());
    }
  }

  // Downtime avoidance: pick the single most effective applicable action
  // by the objective function.
  if (config_.enable_avoidance) {
    act::Action* best = nullptr;
    double best_score = 0.0;
    for (const auto& a : actions_) {
      if (a->goal() != act::ActionGoal::kDowntimeAvoidance) continue;
      if (!cooled_down(a->kind())) continue;
      if (!a->applicable(*system_)) continue;
      const double s = act::objective_score(*a, score, selector_.weights());
      if (s > best_score) {
        best_score = s;
        best = a.get();
      }
    }
    if (best != nullptr) {
      best->execute(*system_, score);
      record(best->kind());
    }
  }
}

void MeaController::run_until(double t) {
  while (!system_->finished() && system_->now() < t) {
    system_->step_to(
        std::min(system_->now() + config_.evaluation_interval, t));
    ++stats_.evaluations;
    const double score = evaluate_now();
    if (score >= config_.warning_threshold) {
      ++stats_.warnings;
      act(score);
    }
  }
}

void MeaController::run() { run_until(system_->config().duration); }

}  // namespace pfm::core
