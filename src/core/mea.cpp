#include "core/mea.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pfm::core {

void ActEngine::add_action(std::unique_ptr<act::Action> action) {
  if (!action) throw std::invalid_argument("ActEngine: null action");
  actions_.push_back(std::move(action));
}

void ActEngine::set_observability(obs::Observability* hub,
                                  std::uint32_t track) {
  track_ = track;
  if (hub == nullptr) {
    tracer_ = nullptr;
    executed_total_ = nullptr;
    faults_total_ = nullptr;
    retries_total_ = nullptr;
    abandoned_total_ = nullptr;
    return;
  }
  tracer_ = hub->tracer();
  auto& metrics = hub->metrics();
  executed_total_ = &metrics.counter("pfm_actions_executed_total");
  faults_total_ = &metrics.counter("pfm_action_faults_total");
  retries_total_ = &metrics.counter("pfm_action_retries_total");
  abandoned_total_ = &metrics.counter("pfm_actions_abandoned_total");
}

void ActEngine::set_flight(obs::FlightRecorder* flight, std::size_t node) {
  flight_ = flight;
  flight_node_ = node;
}

bool ActEngine::try_execute(act::Action& action, ManagedSystem& system,
                            double score, const MeaConfig& config,
                            MeaStats& stats) {
  const std::size_t k = static_cast<std::size_t>(action.kind());
  const std::size_t attempts = std::max<std::size_t>(1, config.retry.max_attempts);
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats.action_retries;
      if (retries_total_ != nullptr) retries_total_->inc();
      obs::record_instant(tracer_, obs::SpanKind::kActionRetry, track_,
                          system.now(), static_cast<std::uint32_t>(attempt),
                          static_cast<std::int64_t>(k));
      if (flight_ != nullptr) {
        flight_->record_node(
            flight_node_,
            obs::FlightEvent{system.now(), obs::FlightEventKind::kActionRetry,
                             static_cast<std::uint32_t>(attempt),
                             static_cast<std::int64_t>(k), score});
      }
    }
    try {
      obs::ScopedSpan span(tracer_, obs::SpanKind::kActionExecute, track_,
                           system.now(), static_cast<std::uint32_t>(attempt),
                           static_cast<std::int64_t>(k));
      action.execute(system, score);
      span.set_sim_end(system.now());
      abandoned_streak_[k] = 0;
      backoff_until_[k] = -1e18;
      if (executed_total_ != nullptr) executed_total_->inc();
      if (flight_ != nullptr) {
        flight_->record_node(
            flight_node_,
            obs::FlightEvent{system.now(), obs::FlightEventKind::kAction,
                             static_cast<std::uint32_t>(attempt),
                             static_cast<std::int64_t>(k), score});
      }
      return true;
    } catch (const std::exception&) {
      ++stats.action_faults;
      if (faults_total_ != nullptr) faults_total_->inc();
      if (config.retry.rethrow) throw;
    }
  }
  // All attempts failed: back the kind off exponentially in simulated
  // time, doubling per consecutive abandoned execution.
  ++stats.actions_abandoned;
  if (abandoned_total_ != nullptr) abandoned_total_->inc();
  if (flight_ != nullptr) {
    flight_->record_node(
        flight_node_,
        obs::FlightEvent{system.now(), obs::FlightEventKind::kActionAbandoned,
                         0, static_cast<std::int64_t>(k), score});
  }
  const double backoff =
      std::min(config.retry.backoff_initial *
                   std::exp2(static_cast<double>(abandoned_streak_[k])),
               config.retry.backoff_max);
  ++abandoned_streak_[k];
  backoff_until_[k] = system.now() + backoff;
  return false;
}

void ActEngine::act(ManagedSystem& system, double score,
                    const MeaConfig& config, MeaStats& stats) {
  const double now = system.now();
  auto cooled_down = [&](act::ActionKind kind) {
    const std::size_t k = static_cast<std::size_t>(kind);
    return now - last_action_time_[k] >= config.action_cooldown &&
           now >= backoff_until_[k];
  };
  auto record = [&](act::ActionKind kind) {
    last_action_time_[static_cast<std::size_t>(kind)] = now;
    ++stats.actions_by_kind[static_cast<std::size_t>(kind)];
  };

  // Downtime minimization: preparing for an anticipated failure is cheap
  // and safe, so it accompanies every warning (Table 1: "prepare repair").
  if (config.enable_minimization) {
    for (const auto& a : actions_) {
      if (a->goal() != act::ActionGoal::kDowntimeMinimization) continue;
      if (!a->applicable(system) || !cooled_down(a->kind())) continue;
      if (try_execute(*a, system, score, config, stats)) record(a->kind());
    }
  }

  // Downtime avoidance: pick the single most effective applicable action
  // by the objective function.
  if (config.enable_avoidance) {
    act::Action* best = nullptr;
    double best_score = 0.0;
    for (const auto& a : actions_) {
      if (a->goal() != act::ActionGoal::kDowntimeAvoidance) continue;
      if (!cooled_down(a->kind())) continue;
      if (!a->applicable(system)) continue;
      const double s = act::objective_score(*a, score, selector_.weights());
      if (s > best_score) {
        best_score = s;
        best = a.get();
      }
    }
    if (best != nullptr &&
        try_execute(*best, system, score, config, stats)) {
      record(best->kind());
    }
  }
}

MeaController::MeaController(ManagedSystem& system, MeaConfig config)
    : system_(&system), config_(std::move(config)) {
  config_.windows.validate();
  if (config_.evaluation_interval <= 0.0) {
    throw std::invalid_argument("MeaController: evaluation interval > 0");
  }
  if (config_.warning_threshold < 0.0 || config_.warning_threshold > 1.0) {
    throw std::invalid_argument("MeaController: threshold in [0,1]");
  }
}

void MeaController::add_symptom_predictor(
    std::shared_ptr<const pred::SymptomPredictor> p) {
  if (!p) throw std::invalid_argument("MeaController: null predictor");
  symptom_.push_back(std::move(p));
}

void MeaController::add_event_predictor(
    std::shared_ptr<const pred::EventPredictor> p) {
  if (!p) throw std::invalid_argument("MeaController: null predictor");
  event_.push_back(std::move(p));
}

void MeaController::add_action(std::unique_ptr<act::Action> action) {
  engine_.add_action(std::move(action));
}

void MeaController::set_observability(obs::Observability* hub) {
  obs_ = hub;
  engine_.set_observability(hub, obs::kFleetTrack);
  if (hub == nullptr) {
    evaluations_total_ = nullptr;
    warnings_total_ = nullptr;
    return;
  }
  evaluations_total_ = &hub->metrics().counter("pfm_evaluations_total");
  warnings_total_ = &hub->metrics().counter("pfm_warnings_total");
}

double MeaController::evaluate_now(std::size_t* sanitized) const {
  double combined = 0.0;
  // A predictor may misbehave and emit NaN/inf (e.g. a numerically
  // degenerate model); a non-finite score must neither poison the max
  // reduce (+inf would warn forever) nor silently vanish — it is excluded
  // and counted.
  auto fold = [&](double score) {
    if (!std::isfinite(score)) {
      if (sanitized != nullptr) ++*sanitized;
      return;
    }
    combined = std::max(combined, score);
  };

  if (!symptom_.empty() && !system_->trace().samples().empty()) {
    auto ctx = system_->symptom_context(config_.context_samples);
    // Evaluation identity for keyed fault-injection streams: origin 0
    // (single system), ordinal = this evaluation's count.
    ctx.ordinal = stats_.evaluations;
    for (const auto& p : symptom_) fold(p->score(ctx));
  }
  if (!event_.empty()) {
    auto seq = system_->error_sequence(config_.windows.data_window);
    seq.ordinal = stats_.evaluations;
    for (const auto& p : event_) fold(p->score(seq));
  }
  return combined;
}

void MeaController::run_until(double t) {
  obs::TraceRecorder* tracer = obs_ != nullptr ? obs_->tracer() : nullptr;
  while (!system_->finished() && system_->now() < t) {
    system_->step_to(
        std::min(system_->now() + config_.evaluation_interval, t));
    ++stats_.evaluations;
    if (evaluations_total_ != nullptr) evaluations_total_->inc();
    double score = 0.0;
    {
      obs::ScopedSpan span(tracer, obs::SpanKind::kEvaluation,
                           obs::kFleetTrack, system_->now());
      score = evaluate_now(&stats_.scores_sanitized);
      // Scores live in [0,1]; micro-units keep the span payload integral.
      span.set_arg(static_cast<std::int64_t>(score * 1e6));
    }
    if (score >= config_.warning_threshold) {
      ++stats_.warnings;
      if (warnings_total_ != nullptr) warnings_total_->inc();
      obs::record_instant(tracer, obs::SpanKind::kWarning, obs::kFleetTrack,
                          system_->now(), 0,
                          static_cast<std::int64_t>(score * 1e6));
      engine_.act(*system_, score, config_, stats_);
    }
  }
}

void MeaController::run() { run_until(system_->horizon()); }

}  // namespace pfm::core
