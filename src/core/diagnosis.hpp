#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/managed_system.hpp"

namespace pfm::core {

/// A suspected root-cause component with supporting evidence.
struct Suspicion {
  std::int32_t component = -1;  ///< node id; -1 = system-wide (workload)
  double score = 0.0;           ///< relative suspicion in [0,1]
  std::string evidence;         ///< human-readable justification
};

/// Diagnosis for the Evaluate phase (Sect. 2: "Evaluation might also
/// include diagnosis in order to identify the components that cause the
/// system to be failure-prone" — with the twist of footnote 3 that no
/// failure has occurred yet, so the diagnosis must work from precursors).
///
/// Ranks components by combining three precursor channels observed in the
/// recent window: per-component error-report intensity (weighted by
/// severity), resource-state anomalies (memory pressure), and active
/// degradation. A workload-driven overload shows up as a system-wide
/// suspicion instead of a component.
class Diagnoser {
 public:
  struct Config {
    /// How far back error reports are considered, seconds.
    double evidence_window = 900.0;
    /// Memory pressure beyond this is suspicious on its own.
    double pressure_threshold = 0.70;
    /// Per-node utilization beyond this suggests workload, not a fault.
    double overload_threshold = 0.80;
  };

  explicit Diagnoser(Config config);
  Diagnoser() : Diagnoser(Config{}) {}

  /// Ranks suspects for the current state of the system, most suspicious
  /// first. An empty result means "no component stands out" (the warning
  /// may be a false positive).
  std::vector<Suspicion> diagnose(const ManagedSystem& system) const;

  /// Convenience: the top suspect's component id, or -1 for system-wide /
  /// nothing.
  std::int32_t prime_suspect(const ManagedSystem& system) const;

 private:
  Config config_;
};

}  // namespace pfm::core
