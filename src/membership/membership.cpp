#include "membership/membership_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pfm::membership {

const char* to_string(ChurnKind kind) {
  switch (kind) {
    case ChurnKind::kJoin:
      return "join";
    case ChurnKind::kLeave:
      return "leave";
    case ChurnKind::kDrain:
      return "drain";
    case ChurnKind::kRestart:
      return "restart";
  }
  return "unknown";
}

namespace {

MembershipPlan& push(MembershipPlan& plan, ChurnEvent ev) {
  plan.events.push_back(ev);
  return plan;
}

}  // namespace

MembershipPlan& MembershipPlan::scale_out(double at_time, std::size_t count,
                                          double stagger) {
  return push(*this, {at_time, ChurnKind::kJoin, 0, count, stagger});
}

MembershipPlan& MembershipPlan::node_leave(double at_time, std::size_t node) {
  return push(*this, {at_time, ChurnKind::kLeave, node, 1, 0.0});
}

MembershipPlan& MembershipPlan::zone_loss(double at_time,
                                          std::size_t first_node,
                                          std::size_t count) {
  return push(*this, {at_time, ChurnKind::kLeave, first_node, count, 0.0});
}

MembershipPlan& MembershipPlan::drain_node(double at_time, std::size_t node) {
  return push(*this, {at_time, ChurnKind::kDrain, node, 1, 0.0});
}

MembershipPlan& MembershipPlan::restart_node(double at_time,
                                             std::size_t node) {
  return push(*this, {at_time, ChurnKind::kRestart, node, 1, 0.0});
}

MembershipPlan& MembershipPlan::rolling_restart(double at_time,
                                                std::size_t first_node,
                                                std::size_t count,
                                                double stagger) {
  return push(*this, {at_time, ChurnKind::kRestart, first_node, count,
                      stagger});
}

void MembershipPlan::validate() const {
  for (const auto& ev : events) {
    if (!std::isfinite(ev.at_time) || ev.at_time < 0.0) {
      throw std::invalid_argument(
          "MembershipPlan: event at_time must be finite and >= 0");
    }
    if (ev.count == 0) {
      throw std::invalid_argument("MembershipPlan: event count must be >= 1");
    }
    if (!std::isfinite(ev.stagger) || ev.stagger < 0.0) {
      throw std::invalid_argument(
          "MembershipPlan: event stagger must be finite and >= 0");
    }
  }
}

std::vector<MemberChange> MembershipPlan::resolve() const {
  validate();
  std::vector<MemberChange> changes;
  for (std::size_t e = 0; e < events.size(); ++e) {
    const auto& ev = events[e];
    for (std::size_t i = 0; i < ev.count; ++i) {
      MemberChange c;
      c.at_time = ev.at_time + static_cast<double>(i) * ev.stagger;
      c.kind = ev.kind;
      // Joins get their slot assigned by the runtime at apply time; bursts
      // over existing slots (zone loss, rolling restart) walk consecutive
      // slots starting at ev.node.
      c.node = ev.kind == ChurnKind::kJoin ? 0 : ev.node + i;
      c.source = e;
      changes.push_back(c);
    }
  }
  std::stable_sort(changes.begin(), changes.end(),
                   [](const MemberChange& a, const MemberChange& b) {
                     return a.at_time < b.at_time;
                   });
  return changes;
}

void ElasticityPolicy::validate() const {
  if (!enabled) return;
  if (std::isnan(scale_up_mass) || std::isnan(drain_score)) {
    throw std::invalid_argument(
        "ElasticityPolicy: thresholds must not be NaN");
  }
  if (scale_up_mass >= 0.0 && scale_up_nodes == 0) {
    throw std::invalid_argument(
        "ElasticityPolicy: scale_up_nodes must be >= 1 when scale-up armed");
  }
}

bool MembershipConfig::needs_factory() const {
  if (policy.enabled) return true;
  for (const auto& ev : plan.events) {
    if (ev.kind == ChurnKind::kJoin || ev.kind == ChurnKind::kRestart) {
      return true;
    }
  }
  return false;
}

void MembershipConfig::validate() const {
  plan.validate();
  policy.validate();
  if (needs_factory() && !factory) {
    throw std::invalid_argument(
        "MembershipConfig: plan joins/restarts or an enabled policy require "
        "a node factory");
  }
}

std::uint64_t derive_member_seed(std::uint64_t plan_seed, std::size_t node,
                                 std::size_t incarnation) {
  // Two rounds of the splitmix64 finalizer, mixing in slot then incarnation,
  // matching the derive(id, origin) stream discipline used elsewhere.
  auto mix = [](std::uint64_t a, std::uint64_t b) {
    std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  return mix(mix(plan_seed, static_cast<std::uint64_t>(node)),
             static_cast<std::uint64_t>(incarnation));
}

}  // namespace pfm::membership
