#pragma once

// Deterministic fleet-membership plans: a sibling of injection::FaultPlan
// that declares *churn* instead of faults.  A MembershipPlan is a list of
// timed churn events (scale-out bursts, rolling restarts, zone loss, node
// drain) resolved into a flat, sim-time-ordered change list that the fleet
// runtime applies at epoch barriers.  Everything here is a pure function of
// the plan contents: resolving a plan twice, or on different machines,
// yields the same change sequence, so any (seed, membership plan, fault
// plan) triple replays bit-identically.
//
// Layering: membership sits beside injection and may depend only on core
// (for the ManagedSystem factory signature) and numerics.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/managed_system.hpp"

namespace pfm::membership {

// ---------------------------------------------------------------------------
// Churn vocabulary

enum class ChurnKind : std::uint8_t {
  kJoin = 0,     // add a brand-new node slot to the fleet
  kLeave = 1,    // remove a node immediately (zone loss, decommission)
  kDrain = 2,    // graceful removal: prepare_for_drain() runs first
  kRestart = 3,  // replace the managed system in-place; fresh incarnation
};

const char* to_string(ChurnKind kind);

// A declarative churn event.  `node` targets an existing slot for
// leave/drain/restart; joins ignore it (the runtime assigns the next free
// slot).  `count > 1` expands the event into a burst (joins) or a rolling
// window over consecutive slots (restarts, zone loss), with `stagger`
// seconds of sim time between consecutive members of the burst.
struct ChurnEvent {
  double at_time = 0.0;
  ChurnKind kind = ChurnKind::kJoin;
  std::size_t node = 0;
  std::size_t count = 1;
  double stagger = 0.0;
};

// One resolved change.  `source` is the index of the originating ChurnEvent,
// kept as a deterministic tie-break and for tracing.
struct MemberChange {
  double at_time = 0.0;
  ChurnKind kind = ChurnKind::kJoin;
  std::size_t node = 0;
  std::size_t source = 0;
};

// ---------------------------------------------------------------------------
// MembershipPlan

struct MembershipPlan {
  // Seed for the membership stream: joiner seeds are derived from it via
  // derive_member_seed(seed, slot, incarnation), independent of the fault
  // plan's and the fleet's own seed streams.
  std::uint64_t seed = 0;
  std::vector<ChurnEvent> events;

  bool empty() const { return events.empty(); }

  // Builders (return *this for chaining).
  MembershipPlan& scale_out(double at_time, std::size_t count,
                            double stagger = 0.0);
  MembershipPlan& node_leave(double at_time, std::size_t node);
  MembershipPlan& zone_loss(double at_time, std::size_t first_node,
                            std::size_t count);
  MembershipPlan& drain_node(double at_time, std::size_t node);
  MembershipPlan& restart_node(double at_time, std::size_t node);
  MembershipPlan& rolling_restart(double at_time, std::size_t first_node,
                                  std::size_t count, double stagger);

  // Throws std::invalid_argument on non-finite/negative times, zero counts,
  // or negative stagger.
  void validate() const;

  // Expand bursts and stable-sort by at_time.  Ties keep declaration order
  // (stable sort over the expansion, which is itself in event order).
  std::vector<MemberChange> resolve() const;
};

// ---------------------------------------------------------------------------
// Closed-loop elasticity

// Evaluated by the fleet controller at every membership barrier using the
// latest combined failure-probability scores.  Thresholds < 0 disable the
// corresponding trigger.  All decisions are functions of sim-time state, so
// policy-driven churn replays exactly like planned churn.
struct ElasticityPolicy {
  bool enabled = false;
  // Preventive scale-up: when the summed combined score ("failure mass")
  // across live nodes crosses this, add scale_up_nodes new nodes.
  double scale_up_mass = -1.0;
  std::size_t scale_up_nodes = 1;
  // Barriers to wait after any policy action before acting again.
  std::size_t cooldown_epochs = 16;
  // Drain-and-failover: a live node whose last combined score crosses this
  // is drained; if failover_replace, a fresh replacement joins at once.
  double drain_score = -1.0;
  bool failover_replace = true;
  // Hard cap on policy-driven joins per run (keeps runaway feedback bounded
  // and the run length deterministic).
  std::size_t max_policy_joins = 64;

  void validate() const;
};

// ---------------------------------------------------------------------------
// Node factories

// Everything a factory needs to build a deterministic joiner: the assigned
// slot, the incarnation number (0 for the initial population, +1 per
// restart), the sim time of the join, and a seed drawn from the membership
// plan's stream discipline.
struct JoinContext {
  std::size_t node = 0;
  std::size_t incarnation = 0;
  double at_time = 0.0;
  std::uint64_t seed = 0;
  bool policy_driven = false;
};

using NodeFactory =
    std::function<std::unique_ptr<core::ManagedSystem>(const JoinContext&)>;

// ---------------------------------------------------------------------------
// Config + stats

struct MembershipConfig {
  MembershipPlan plan;
  ElasticityPolicy policy;
  // Required whenever the plan contains joins/restarts or the policy is
  // enabled (policy actions may spawn replacements).
  NodeFactory factory;

  // True when membership machinery should be armed at all.  Inactive
  // configs are guaranteed zero-overhead and byte-identical to a build
  // without the subsystem.
  bool active() const { return !plan.empty() || policy.enabled; }

  bool needs_factory() const;
  void validate() const;
};

struct MembershipStats {
  std::uint64_t nodes_joined = 0;
  std::uint64_t nodes_left = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t drains = 0;
};

// splitmix64 over (plan seed, slot, incarnation) — the same finalizer as the
// runtime's per-node streams and the injector's DecisionStream::mix, kept as
// a local copy so membership does not depend on injection or runtime.
std::uint64_t derive_member_seed(std::uint64_t plan_seed, std::size_t node,
                                 std::size_t incarnation);

}  // namespace pfm::membership
