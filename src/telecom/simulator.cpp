#include "telecom/simulator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pfm::telecom {

namespace {

/// Standard normal upper tail probability.
double normal_tail(double z) noexcept { return 0.5 * std::erfc(z / M_SQRT2); }

}  // namespace

std::string to_string(FailureCause cause) {
  switch (cause) {
    case FailureCause::kMemoryLeak:
      return "memory-leak";
    case FailureCause::kCascade:
      return "error-cascade";
    case FailureCause::kOverload:
      return "overload";
    case FailureCause::kOther:
      return "other";
  }
  return "unknown";
}

mon::SymptomSchema ScpSimulator::make_schema() {
  return mon::SymptomSchema({
      "arrival_rate",      // offered load, requests/s
      "util_mean",         // mean node utilization
      "util_max",          // worst node utilization
      "free_mem_min_mb",   // worst node free memory
      "free_mem_mean_mb",  // mean free memory
      "mem_pressure_max",  // worst node used-memory fraction
      "resp_p95_ms",       // modeled 95th percentile response time
      "error_rate",        // error log events per second
      "sem_ops_rate",      // semaphore operations per second
      "cpu_user",          // user-mode CPU fraction
      "net_tx_mbps",       // network transmit rate
      "disk_io_iops",      // distractor: unrelated disk activity
      "paging_rate",       // page-out rate, rises under memory pressure
      "ambient_temp",      // distractor: machine-room temperature
      "thread_count",      // worker threads; runaway components spawn more
  });
}

ScpSimulator::ScpSimulator(SimConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      workload_(config_, rng_),
      trace_(make_schema()),
      window_end_(config_.availability_window),
      next_periodic_checkpoint_(config_.checkpoint_interval) {
  config_.validate();
  nodes_.reserve(config_.num_nodes);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    nodes_.emplace_back(config_, static_cast<std::int32_t>(i), 0.0, rng_);
  }
  last_util_.assign(config_.num_nodes, 0.0);
  last_degradation_.assign(config_.num_nodes, 1.0);
}

double ScpSimulator::queue_multiplier(double utilization) const noexcept {
  const double u = std::min(utilization, 0.98);
  return 1.0 + 0.5 * u * u / (1.0 - u);
}

double ScpSimulator::violation_probability(double mean_ms) const noexcept {
  // Response time ~ LogNormal(mu, sigma) with E[RT] = mean_ms:
  // mu = ln(mean) - sigma^2/2; P(RT > L) = Phi_c((ln L - mu)/sigma).
  const double sigma = config_.response_sigma;
  const double z =
      (std::log(config_.response_limit_ms / mean_ms) + 0.5 * sigma * sigma) /
      sigma;
  return normal_tail(z);
}

void ScpSimulator::step_to(double t) {
  const double target = std::min(t, config_.duration);
  while (now_ < target) {
    tick(now_);
    now_ += config_.tick;
    stats_.simulated = now_;
  }
}

void ScpSimulator::tick(double t) {
  const double dt = config_.tick;
  std::vector<mon::ErrorEvent>& events = tick_events_;
  events.clear();

  // Periodic checkpointing (classical, prediction-independent).
  if (t >= next_periodic_checkpoint_) {
    last_checkpoint_ = t;
    next_periodic_checkpoint_ += config_.checkpoint_interval;
  }

  const bool down = t < service_down_until_;
  if (down) stats_.downtime += dt;

  const auto arrivals = workload_.arrivals(t, dt);
  stats_.shed_requests = workload_.shed_count();
  std::int64_t total_arrivals = 0;
  for (auto a : arrivals) total_arrivals += a;

  // Traffic only reaches nodes while the service is up.
  std::vector<std::size_t>& alive = tick_alive_;
  alive.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].available(t)) alive.push_back(i);
  }

  if (!down) {
    stats_.total_requests += total_arrivals;
    window_requests_ += total_arrivals;
  }

  if (!down && alive.empty()) {
    // All replicas restarting at once: every request violates.
    window_violations_ += total_arrivals;
    stats_.violations += total_arrivals;
  }

  // Utilization follows the fluid (mean) offered rate: queueing delay
  // reflects sustained load, not single-tick Poisson noise.
  const double per_node_rate =
      alive.empty() ? 0.0
                    : workload_.mean_rate(t) /
                          static_cast<double>(alive.size());

  // Healthy nodes share one modeled mean response per class (same offered
  // load, degradation 1.0), so the pure violation_probability is memoized
  // on the exact mean within the tick: an identical input reuses the
  // identical result, anything else recomputes — bit-for-bit unchanged.
  std::array<double, kNumRequestClasses> memo_mean;
  std::array<double, kNumRequestClasses> memo_p{};
  memo_mean.fill(std::numeric_limits<double>::quiet_NaN());

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const bool serving = !down && nodes_[i].available(t) && !alive.empty();
    const double util = serving ? per_node_rate / config_.node_capacity : 0.0;
    const double degradation = nodes_[i].advance(t, dt, util, events);
    last_util_[i] = util;
    last_degradation_[i] = degradation;

    if (!serving) continue;
    const double qmult = queue_multiplier(util);
    for (std::size_t c = 0; c < kNumRequestClasses; ++c) {
      // This node's share of the class arrivals.
      const double share = static_cast<double>(arrivals[c]) /
                           static_cast<double>(alive.size());
      if (share <= 0.0) continue;
      const double mean_ms =
          config_.base_response_ms[c] * qmult * degradation;
      double p;
      if (mean_ms == memo_mean[c]) {
        p = memo_p[c];
      } else {
        p = violation_probability(mean_ms);
        memo_mean[c] = mean_ms;
        memo_p[c] = p;
      }
      if (p <= 0.0) continue;
      const double expected = share * p;
      auto v = rng_.poisson(expected);
      v = std::min<std::int64_t>(v, static_cast<std::int64_t>(share) + 1);
      window_violations_ += v;
      stats_.violations += v;
#ifdef PFM_DEBUG_VIOLATIONS
      if (v > 0) {
        std::fprintf(stderr,
                     "t=%.0f node=%zu class=%zu share=%.1f util=%.3f deg=%.2f "
                     "qmult=%.2f mean_ms=%.1f p=%.3g v=%lld\n",
                     t, i, c, share, util, degradation, qmult, mean_ms, p,
                     static_cast<long long>(v));
      }
#endif
    }
  }

  // Error events into the trace, sorted by time within the tick.
  std::sort(events.begin(), events.end(),
            [](const mon::ErrorEvent& a, const mon::ErrorEvent& b) {
              return a.time < b.time;
            });
  for (auto& e : events) {
    e.time = std::clamp(e.time, t, t + dt);
    trace_.add_event(e);
  }

  // Symptom sampling.
  if (t >= next_sample_) {
    sample_symptoms(t);
    next_sample_ += config_.sample_interval;
  }

  // Interval-availability check (Eq. 2).
  if (t + dt >= window_end_) {
    end_window(window_end_);
    window_end_ += config_.availability_window;
  }
}

void ScpSimulator::end_window(double t) {
  if (window_requests_ > 0) {
    const double fraction = static_cast<double>(window_violations_) /
                            static_cast<double>(window_requests_);
    if (fraction > config_.max_violation_fraction) fail(t);
  }
  window_requests_ = 0;
  window_violations_ = 0;
}

void ScpSimulator::fail(double t) {
  trace_.add_failure(t);
  ++stats_.failures;

  // Identify the culprit: the most degraded node, if any is degraded;
  // otherwise the failure is workload-driven.
  std::size_t culprit = 0;
  double worst = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (last_degradation_[i] > worst) {
      worst = last_degradation_[i];
      culprit = i;
    }
  }
  FailureCause cause = FailureCause::kOther;
  if (worst > 1.5) {
    cause = nodes_[culprit].cascade_stage() >= 3 ? FailureCause::kCascade
                                                 : FailureCause::kMemoryLeak;
  } else if (*std::max_element(last_util_.begin(), last_util_.end()) > 0.8) {
    cause = FailureCause::kOverload;
  }

  const bool prepared = t <= prepared_until_;
  const double ttr = repair_time(prepared, t - last_checkpoint_);
  service_down_until_ = t + ttr;
  if (prepared) {
    ++stats_.prepared_repairs;
  } else {
    ++stats_.unprepared_repairs;
  }
  failure_infos_.push_back({t, cause, prepared, ttr});

  // Repair clears the culprit's faults (hardware swap / process restart /
  // state resync happens during the downtime window).
  if (worst > 1.5) {
    nodes_[culprit].repair_reset(t, service_down_until_);
  }
  // A checkpoint is taken as part of bringing the service back up.
  last_checkpoint_ = service_down_until_;
}

double ScpSimulator::repair_time(bool prepared,
                                 double time_since_checkpoint) const {
  const double reconfig =
      prepared ? config_.reconfig_warm : config_.reconfig_cold;
  const double recompute =
      std::min(config_.recompute_max,
               config_.recompute_factor * std::max(0.0, time_since_checkpoint));
  return reconfig + recompute;
}

void ScpSimulator::preventive_restart(std::size_t node) {
  nodes_.at(node).preventive_restart(now_);
  ++stats_.preventive_restarts;
}

void ScpSimulator::shed_load(double fraction, double duration) {
  workload_.shed(fraction, now_ + duration);
}

void ScpSimulator::prepare_for_failure(double window) {
  if (window < 0.0) {
    throw std::invalid_argument("prepare_for_failure: negative window");
  }
  // Warm spare stays ready for `window`; checkpoint taken immediately
  // (assumed fault-isolated per Sect. 4.3's discussion).
  prepared_until_ = std::max(prepared_until_, now_ + window);
  last_checkpoint_ = now_;
}

void ScpSimulator::sample_symptoms(double t) {
  const std::size_t n = nodes_.size();
  double util_sum = 0.0, util_max = 0.0;
  double mem_min = config_.node_memory_mb, mem_sum = 0.0;
  double pressure_max = 0.0, degradation_max = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    util_sum += last_util_[i];
    util_max = std::max(util_max, last_util_[i]);
    const double free = nodes_[i].free_memory_mb();
    mem_min = std::min(mem_min, free);
    mem_sum += free;
    pressure_max = std::max(pressure_max, nodes_[i].memory_pressure());
    degradation_max = std::max(degradation_max, last_degradation_[i]);
  }
  const double util_mean = util_sum / static_cast<double>(n);
  const double arrival = workload_.mean_rate(t);

  // Modeled p95 of the class-mix response time on the worst node.
  const double base_mix = 0.5 * config_.base_response_ms[0] +
                          0.3 * config_.base_response_ms[1] +
                          0.2 * config_.base_response_ms[2];
  const double sigma = config_.response_sigma;
  const double resp_p95 = base_mix * queue_multiplier(util_max) *
                          degradation_max *
                          std::exp(1.645 * sigma - 0.5 * sigma * sigma);

  // Error rate over the last sampling interval.
  const std::size_t total_events = trace_.events().size();
  const double err_rate =
      static_cast<double>(total_events - events_seen_) /
      config_.sample_interval;
  events_seen_ = total_events;

  // Correlated and distractor variables.
  const double throughput = service_down() ? 0.0 : arrival;
  const double sem_ops = throughput * 42.0 * rng_.uniform(0.9, 1.1);
  const double cpu_user =
      std::clamp(util_mean * rng_.uniform(0.92, 1.08) + 0.03, 0.0, 1.0);
  const double net_tx = throughput * 0.29 * rng_.uniform(0.95, 1.05);
  disk_io_ = std::clamp(disk_io_ + rng_.normal(0.0, 6.0), 40.0, 400.0);
  const double paging =
      std::max(0.0, (pressure_max - 0.72) * 900.0) * rng_.uniform(0.8, 1.2) +
      rng_.uniform(0.0, 4.0);
  ambient_phase_ = t / 86400.0 * 2.0 * M_PI;
  const double temp = 22.0 + 1.5 * std::sin(ambient_phase_) +
                      rng_.normal(0.0, 0.3);

  // Worker threads: a side-effect symptom of error cascades (the runaway
  // component spawns retry/handler threads as the cascade progresses).
  double stage_bonus = 0.0;
  for (const auto& node : nodes_) {
    static constexpr double kBonus[] = {0.0, 30.0, 75.0, 150.0, 150.0};
    const int stage = std::min(node.cascade_stage(), 4);
    stage_bonus = std::max(stage_bonus, kBonus[stage]);
  }
  // Benign thread-pool resizing adds heavy-tailed noise of its own.
  thread_walk_ = std::clamp(thread_walk_ + rng_.normal(0.0, 12.0), -90.0, 90.0);
  const double threads = 250.0 + 0.8 * workload_.mean_rate(t) + stage_bonus +
                         thread_walk_ + rng_.normal(0.0, 35.0);

  mon::SymptomSample s;
  s.time = t;
  s.values = {arrival,   util_mean, util_max, mem_min,
              mem_sum / static_cast<double>(n),
              pressure_max, resp_p95, err_rate, sem_ops, cpu_user,
              net_tx,    disk_io_,  paging,   temp,     threads};
  trace_.add_sample(std::move(s));
}

}  // namespace pfm::telecom
