#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "monitoring/dataset.hpp"
#include "numerics/rng.hpp"
#include "telecom/config.hpp"
#include "telecom/node.hpp"
#include "telecom/workload.hpp"

namespace pfm::telecom {

/// Root cause recorded for each service failure.
enum class FailureCause : std::uint8_t {
  kMemoryLeak = 0,  ///< software aging on some node
  kCascade = 1,     ///< error cascade reached stage 3
  kOverload = 2,    ///< workload exceeded capacity
  kOther = 3
};

/// Per-failure record kept by the simulator (beyond the dataset's failure
/// log): cause, whether repair was prepared, and the repair time.
struct FailureInfo {
  double time = 0.0;
  FailureCause cause = FailureCause::kOther;
  bool prepared = false;
  double repair_time = 0.0;
};

/// Aggregate run statistics.
struct SimStats {
  std::int64_t total_requests = 0;
  std::int64_t violations = 0;  ///< requests slower than the Eq. 2 limit
  std::int64_t failures = 0;
  double downtime = 0.0;  ///< seconds of service downtime
  std::int64_t shed_requests = 0;
  std::int64_t preventive_restarts = 0;
  std::int64_t prepared_repairs = 0;
  std::int64_t unprepared_repairs = 0;
  double simulated = 0.0;  ///< seconds simulated so far

  /// Steady-state availability estimate: uptime / simulated time.
  double availability() const noexcept {
    return simulated > 0.0 ? 1.0 - downtime / simulated : 1.0;
  }
};

/// Hybrid discrete-event / fluid simulator of the commercial SCP platform
/// of the paper's case study (Sect. 3.3).
///
/// Produces (a) a MonitoringDataset — periodic SAR-style symptom samples,
/// the error-event log and the failure log per the Eq. 2 failure
/// definition — and (b) live hooks for prediction-driven countermeasures
/// (preventive restart, load shedding, checkpointing, repair preparation),
/// so the same model serves offline predictor training and the closed-loop
/// MEA experiments.
class ScpSimulator {
 public:
  explicit ScpSimulator(SimConfig config);

  /// Runs the whole configured duration (offline trace generation).
  void run() { step_to(config_.duration); }

  /// Advances the simulation up to time `t` (clamped to the configured
  /// duration). Idempotent for t <= now().
  void step_to(double t);

  double now() const noexcept { return now_; }
  bool finished() const noexcept { return now_ >= config_.duration; }

  const SimConfig& config() const noexcept { return config_; }
  const mon::MonitoringDataset& trace() const noexcept { return trace_; }
  const SimStats& stats() const noexcept { return stats_; }
  const std::vector<FailureInfo>& failure_infos() const noexcept {
    return failure_infos_;
  }

  /// Moves the accumulated trace out (ends the simulator's usefulness for
  /// further stepping with history; use after run()).
  mon::MonitoringDataset take_trace() { return std::move(trace_); }

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  const ServiceNode& node(std::size_t i) const { return nodes_.at(i); }

  /// True while the service as a whole is down (failure being repaired).
  bool service_down() const noexcept { return now_ < service_down_until_; }

  // --- countermeasure hooks (the Act phase operates through these) ---------

  /// Preventive restart / rejuvenation of one node (downtime avoidance:
  /// state clean-up). Throws std::out_of_range for a bad index.
  void preventive_restart(std::size_t node);

  /// Lowers offered load by `fraction` for `duration` seconds (downtime
  /// avoidance: lowering the load). Rejected requests are accounted in
  /// stats().shed_requests.
  void shed_load(double fraction, double duration);

  /// Saves a checkpoint now (bounds the recomputation part of a later
  /// repair, Fig. 8).
  void checkpoint() { last_checkpoint_ = now_; }

  /// Prepares repair for an anticipated failure (downtime minimization:
  /// warm spare + fresh checkpoint). Effective for failures within
  /// `window` seconds.
  void prepare_for_failure(double window);

  /// The Fig. 8 repair-time decomposition: reconfiguration plus bounded
  /// recomputation since the last checkpoint.
  double repair_time(bool prepared, double time_since_checkpoint) const;

  /// Current mean offered arrival rate (monitoring convenience).
  double current_arrival_rate() const { return workload_.mean_rate(now_); }

 private:
  void tick(double t);
  void end_window(double t);
  void fail(double t);
  double queue_multiplier(double utilization) const noexcept;
  /// P(response time > limit) for a lognormal response with the given mean.
  double violation_probability(double mean_ms) const noexcept;
  void sample_symptoms(double t);
  static mon::SymptomSchema make_schema();

  SimConfig config_;
  num::Rng rng_;
  WorkloadGenerator workload_;
  std::vector<ServiceNode> nodes_;
  mon::MonitoringDataset trace_;
  SimStats stats_;
  std::vector<FailureInfo> failure_infos_;

  double now_ = 0.0;
  double next_sample_ = 0.0;
  double window_end_;
  double service_down_until_ = 0.0;
  double last_checkpoint_ = 0.0;
  double next_periodic_checkpoint_;
  double prepared_until_ = -1.0;

  // Window accumulators (Eq. 2).
  std::int64_t window_requests_ = 0;
  std::int64_t window_violations_ = 0;

  // Last-tick node observations for symptom sampling.
  std::vector<double> last_util_;
  std::vector<double> last_degradation_;
  std::size_t events_seen_ = 0;  // for error-rate sampling

  // Distractor variables (random walks / periodic noise).
  double disk_io_ = 120.0;
  double ambient_phase_ = 0.0;
  double thread_walk_ = 0.0;

  // Per-tick scratch, hoisted out of tick() so the hot loop stays
  // allocation-free after warm-up. Values never survive a tick.
  std::vector<mon::ErrorEvent> tick_events_;
  std::vector<std::size_t> tick_alive_;
};

/// Human-readable failure cause.
std::string to_string(FailureCause cause);

}  // namespace pfm::telecom
