#pragma once

#include <cstdint>
#include <vector>

#include "monitoring/types.hpp"
#include "numerics/rng.hpp"
#include "telecom/config.hpp"

namespace pfm::telecom {

/// One replicated service container of the simulated SCP.
///
/// Carries the injected fault processes that drive the paper's
/// fault -> error -> symptom -> failure chain (Fig. 2):
///  - *memory leaks* (software aging): free memory decays slowly; memory
///    pressure first shows as a symptom (monitorable), then as detected
///    errors (kMemLow/kAllocSlow/kGcThrash log events), finally as response
///    time degradation and a performance failure;
///  - *error cascades*: a latent fault progresses through three stages,
///    each emitting a characteristic burst of log events (the pattern the
///    HSMM predictor learns), with response times collapsing in stage 3;
///  - *benign noise*: spurious log events and cascade-lookalike events that
///    create false-positive pressure for the predictors.
class ServiceNode {
 public:
  /// Creates a fresh node at time `now`; fault onset clocks are drawn from
  /// the config's MTBF parameters.
  ServiceNode(const SimConfig& config, std::int32_t id, double now,
              num::Rng& rng);

  /// Advances the node by one tick, appending any emitted error events to
  /// `events`. `utilization` is the node's current offered load relative
  /// to capacity (drives overload error reporting). Returns the node's
  /// current response-time degradation multiplier (1 = nominal).
  double advance(double t, double dt, double utilization,
                 std::vector<mon::ErrorEvent>& events);

  /// True when the node currently serves traffic.
  bool available(double t) const noexcept { return t >= down_until_; }
  double down_until() const noexcept { return down_until_; }

  std::int32_t id() const noexcept { return id_; }
  double free_memory_mb() const noexcept;
  /// Used-memory fraction in [0,1].
  double memory_pressure() const noexcept;
  bool leak_active() const noexcept { return leak_rate_ > 0.0; }
  /// 0 when no cascade in progress, otherwise the current stage 1..3
  /// (3 also covers the post-stage broken state until repair).
  int cascade_stage() const noexcept { return cascade_stage_; }

  /// Current degradation multiplier without advancing time.
  double degradation(double t) const noexcept;

  /// Preventive restart (rejuvenation / state clean-up): clears the leak
  /// and any cascade, node is down for config.restart_duration.
  void preventive_restart(double t);

  /// Repair after a failure: full reset, node down until `until`.
  void repair_reset(double t, double until);

  /// Number of preventive restarts performed.
  std::int64_t restart_count() const noexcept { return restarts_; }

 private:
  void enter_cascade_stage(double t, int stage,
                           std::vector<mon::ErrorEvent>& events);
  void clear_faults(double t);
  void emit(std::vector<mon::ErrorEvent>& events, double t, std::int32_t id,
            std::int32_t severity) const;

  const SimConfig* config_;
  num::Rng* rng_;
  std::int32_t id_;

  double leaked_mb_ = 0.0;
  double leak_rate_ = 0.0;  // MB/s; 0 = no active leak
  double next_leak_onset_ = 0.0;

  int cascade_stage_ = 0;
  double cascade_stage_end_ = 0.0;
  double cascade_stage_start_ = 0.0;
  double next_cascade_onset_ = 0.0;

  double down_until_ = 0.0;
  std::int64_t restarts_ = 0;
  double prev_util_ = 0.0;

  // Poisson thinning accumulators for pressure-driven error events.
  double next_noise_ = 0.0;
  double next_lookalike_ = 0.0;
  // Benign events scheduled for the near future (noise bursts), sorted.
  std::vector<mon::ErrorEvent> pending_;
};

}  // namespace pfm::telecom
