#include "telecom/workload.hpp"

#include <cmath>

namespace pfm::telecom {

WorkloadGenerator::WorkloadGenerator(const SimConfig& config, num::Rng& rng)
    : config_(&config), rng_(&rng) {
  next_spike_ = rng_->exponential(1.0 / config_->spike_mtbf);
}

void WorkloadGenerator::maybe_schedule_spike(double t) {
  while (t >= next_spike_) {
    spike_start_ = next_spike_;
    spike_end_ = spike_start_ + rng_->uniform(config_->spike_min_duration,
                                              config_->spike_max_duration);
    spike_factor_ =
        rng_->uniform(config_->spike_min_factor, config_->spike_max_factor);
    next_spike_ = spike_end_ + rng_->exponential(1.0 / config_->spike_mtbf);
  }
}

double WorkloadGenerator::unshed_rate(double t) const noexcept {
  // Diurnal modulation with a 24h period, trough at 04:00.
  const double phase = 2.0 * M_PI * (t / 86400.0 - 4.0 / 24.0);
  double rate = config_->arrival_rate *
                (1.0 - config_->diurnal_amplitude * std::cos(phase));
  if (spike_active(t)) {
    // Linear ramp toward the full spike factor.
    const double ramp =
        std::min(1.0, (t - spike_start_) / std::max(config_->spike_ramp, 1.0));
    rate *= 1.0 + (spike_factor_ - 1.0) * ramp;
  }
  return rate;
}

double WorkloadGenerator::mean_rate(double t) const noexcept {
  double rate = unshed_rate(t);
  if (t < shed_until_) rate *= 1.0 - shed_fraction_;
  return rate;
}

std::array<std::int64_t, kNumRequestClasses> WorkloadGenerator::arrivals(
    double t, double dt) {
  maybe_schedule_spike(t);
  const double before_shed = unshed_rate(t);
  const double rate = mean_rate(t);
  if (t < shed_until_ && before_shed > rate) {
    shed_count_ += rng_->poisson((before_shed - rate) * dt);
  }
  std::array<std::int64_t, kNumRequestClasses> counts{};
  for (std::size_t c = 0; c < kNumRequestClasses; ++c) {
    counts[c] = rng_->poisson(rate * class_mix_[c] * dt);
  }
  return counts;
}

void WorkloadGenerator::shed(double fraction, double until) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("WorkloadGenerator::shed: fraction in [0,1]");
  }
  shed_fraction_ = fraction;
  shed_until_ = until;
}

}  // namespace pfm::telecom
