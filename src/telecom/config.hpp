#pragma once

#include <cstdint>
#include <stdexcept>

namespace pfm::telecom {

/// Service request classes handled by the simulated Service Control Point
/// (Sect. 3.3: Mobile Originated Calls, Short Message Service, GPRS).
enum class RequestClass : std::uint8_t { kMoc = 0, kSms = 1, kGprs = 2 };
inline constexpr std::size_t kNumRequestClasses = 3;

/// Configuration of the simulated SCP platform.
///
/// The simulator is a hybrid fluid/discrete-event model: request traffic is
/// aggregated per one-second tick (Poisson counts, analytic response-time
/// tail), while faults, error events and failures are discrete. This keeps
/// multi-week traces tractable while preserving the causal chain
/// fault -> error -> symptom -> failure that the predictors consume.
struct SimConfig {
  std::uint64_t seed = 1;

  /// Simulated duration in seconds (default: 14 days).
  double duration = 14.0 * 86400.0;

  /// Simulation tick in seconds.
  double tick = 1.0;

  /// Number of replicated service containers.
  std::size_t num_nodes = 4;

  // --- workload -----------------------------------------------------------
  /// Mean total arrival rate over all classes, requests/second.
  double arrival_rate = 60.0;
  /// Relative diurnal modulation amplitude in [0,1).
  double diurnal_amplitude = 0.4;
  /// Mean time between load-spike onsets, seconds.
  double spike_mtbf = 86400.0 * 1.25;
  /// Spike magnitude (multiplier on arrival rate), drawn in [2, 4].
  double spike_min_factor = 2.0;
  double spike_max_factor = 4.0;
  /// Spike duration bounds, seconds.
  double spike_min_duration = 600.0;
  double spike_max_duration = 1800.0;
  /// Seconds over which a spike ramps up to full magnitude (gives
  /// symptom-based predictors a precursor signal).
  double spike_ramp = 900.0;

  // --- node resource model -------------------------------------------------
  /// Physical memory per node, MB.
  double node_memory_mb = 4096.0;
  /// Baseline (non-leaked) memory usage fraction.
  double base_memory_fraction = 0.45;
  /// Requests/second one node can serve at nominal service time.
  double node_capacity = 30.0;
  /// Nominal mean response time per class, milliseconds.
  double base_response_ms[kNumRequestClasses] = {35.0, 15.0, 25.0};
  /// Lognormal sigma of the response-time distribution.
  double response_sigma = 0.25;

  // --- fault injection ------------------------------------------------------
  /// Mean time between memory-leak episode onsets per node, seconds.
  double leak_mtbf = 86400.0 * 2.0;
  /// Leak rate bounds, MB/second (slow software aging).
  double leak_min_rate = 0.08;
  double leak_max_rate = 0.35;
  /// Mean time between error-cascade onsets per node, seconds.
  double cascade_mtbf = 86400.0 * 1.5;
  /// Mean duration of one cascade stage, seconds (3 stages to failure).
  /// Chosen so that two consecutive stage bursts fit into one 600 s data
  /// window — the inter-stage timing is then observable, which is what the
  /// HSMM's duration modeling exploits.
  double cascade_stage_mean = 240.0;
  /// Rate of benign noise error events per node, events/second.
  double noise_event_rate = 1.0 / 900.0;
  /// Rate of benign lookalike events (cascade ids out of context).
  double lookalike_event_rate = 1.0 / 2400.0;

  // --- failure definition (Eq. 2) -------------------------------------------
  /// Response-time limit, milliseconds.
  double response_limit_ms = 250.0;
  /// Interval-availability window, seconds.
  double availability_window = 300.0;
  /// Maximum tolerated fraction of slow calls per window (1e-4 = 99.99%).
  double max_violation_fraction = 1e-4;

  // --- repair model (Fig. 8) -------------------------------------------------
  /// Reconfiguration time after an unanticipated failure (cold spare boot
  /// plus fault isolation), seconds.
  double reconfig_cold = 360.0;
  /// Reconfiguration time when repair was prepared by a failure warning
  /// (spare pre-booted), seconds.
  double reconfig_warm = 90.0;
  /// Recomputation/state-resync cost: seconds of repair per second since
  /// the last checkpoint.
  double recompute_factor = 0.02;
  /// Upper bound on recomputation time, seconds.
  double recompute_max = 600.0;
  /// Interval of periodic (non-prediction-driven) checkpoints, seconds.
  double checkpoint_interval = 3600.0;
  /// Duration of a preventive node restart (rejuvenation), seconds.
  double restart_duration = 60.0;

  // --- monitoring -------------------------------------------------------------
  /// SAR sampling interval, seconds.
  double sample_interval = 30.0;

  /// Throws std::invalid_argument when any parameter is out of range.
  void validate() const {
    auto require = [](bool ok, const char* m) {
      if (!ok) throw std::invalid_argument(m);
    };
    require(duration > 0.0, "SimConfig: duration must be positive");
    require(tick > 0.0 && tick <= availability_window,
            "SimConfig: tick must be in (0, availability_window]");
    require(num_nodes >= 1, "SimConfig: need at least one node");
    require(arrival_rate > 0.0, "SimConfig: arrival_rate must be positive");
    require(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0,
            "SimConfig: diurnal_amplitude in [0,1)");
    require(node_capacity > 0.0, "SimConfig: node_capacity must be positive");
    require(node_memory_mb > 0.0, "SimConfig: node_memory_mb positive");
    require(base_memory_fraction > 0.0 && base_memory_fraction < 1.0,
            "SimConfig: base_memory_fraction in (0,1)");
    require(max_violation_fraction > 0.0 && max_violation_fraction < 1.0,
            "SimConfig: max_violation_fraction in (0,1)");
    require(sample_interval > 0.0, "SimConfig: sample_interval positive");
    require(response_limit_ms > 0.0, "SimConfig: response limit positive");
    require(availability_window > 0.0, "SimConfig: window positive");
  }
};

/// Well-known error event ids emitted by the simulator. Predictors treat
/// these as opaque categorical ids; the names exist for documentation and
/// debugging.
namespace event_id {
// Memory-pressure symptoms of a leak.
inline constexpr std::int32_t kMemLow = 101;
inline constexpr std::int32_t kAllocSlow = 102;
inline constexpr std::int32_t kGcThrash = 103;
// Error-cascade stages.
inline constexpr std::int32_t kCascadeStage1 = 201;
inline constexpr std::int32_t kCascadeStage2 = 202;
inline constexpr std::int32_t kCascadeStage2b = 203;
inline constexpr std::int32_t kCascadeStage3 = 204;
// Overload.
inline constexpr std::int32_t kQueueHigh = 301;
inline constexpr std::int32_t kTimeout = 302;
// Benign noise ids occupy [401, 420].
inline constexpr std::int32_t kNoiseBase = 401;
inline constexpr std::int32_t kNoiseCount = 20;
}  // namespace event_id

}  // namespace pfm::telecom
