#include "telecom/node.hpp"

#include <algorithm>
#include <cmath>

namespace pfm::telecom {

ServiceNode::ServiceNode(const SimConfig& config, std::int32_t id, double now,
                         num::Rng& rng)
    : config_(&config), rng_(&rng), id_(id) {
  next_leak_onset_ = now + rng_->exponential(1.0 / config_->leak_mtbf);
  next_cascade_onset_ = now + rng_->exponential(1.0 / config_->cascade_mtbf);
  next_noise_ = now + rng_->exponential(config_->noise_event_rate);
  next_lookalike_ = now + rng_->exponential(config_->lookalike_event_rate);
}

double ServiceNode::free_memory_mb() const noexcept {
  const double used =
      config_->base_memory_fraction * config_->node_memory_mb + leaked_mb_;
  return std::max(0.0, config_->node_memory_mb - used);
}

double ServiceNode::memory_pressure() const noexcept {
  return 1.0 - free_memory_mb() / config_->node_memory_mb;
}

void ServiceNode::emit(std::vector<mon::ErrorEvent>& events, double t,
                       std::int32_t event_id, std::int32_t severity) const {
  events.push_back(mon::ErrorEvent{t, event_id, id_, severity});
}

void ServiceNode::enter_cascade_stage(double t, int stage,
                                      std::vector<mon::ErrorEvent>& events) {
  cascade_stage_ = stage;
  cascade_stage_start_ = t;
  // Stage duration: Gamma(shape 4) around the configured mean, giving the
  // semi-Markov timing structure the HSMM exploits.
  const double mean = config_->cascade_stage_mean;
  cascade_stage_end_ = t + rng_->gamma(4.0, mean / 4.0);
  // Each stage announces itself with one immediate event and a small burst
  // spread over the following minute — the same micro-timing as benign
  // noise bursts, so only the event ids and the inter-stage timing carry
  // the failure signature.
  auto schedule_burst = [&](std::int32_t eid, std::int64_t count,
                            std::int32_t severity) {
    double bt = t;
    for (std::int64_t i = 0; i < count; ++i) {
      bt += rng_->exponential(1.0 / 20.0);
      pending_.push_back(mon::ErrorEvent{bt, eid, id_, severity});
    }
  };
  switch (stage) {
    case 1:
      emit(events, t, event_id::kCascadeStage1, 2);
      schedule_burst(event_id::kCascadeStage1, 1 + rng_->poisson(1.5), 2);
      break;
    case 2:
      emit(events, t, event_id::kCascadeStage2, 3);
      schedule_burst(event_id::kCascadeStage2b, 1 + rng_->poisson(1.0), 3);
      break;
    case 3:
      emit(events, t, event_id::kCascadeStage3, 4);
      schedule_burst(event_id::kTimeout, 1 + rng_->poisson(0.5), 4);
      break;
    default:
      break;
  }
}

double ServiceNode::degradation(double t) const noexcept {
  // Memory pressure inflates response times once beyond 75% utilization
  // (paging/garbage-collection thrash).
  const double pressure = memory_pressure();
  double mult = 1.0;
  if (pressure > 0.75) {
    const double x = std::min(1.0, (pressure - 0.75) / 0.25);
    mult += 6.0 * x * x;
  }
  // Cascade: stage 2 already degrades mildly (a symptom predictors can
  // see), stage 3 collapses service times, ramping over the stage.
  if (cascade_stage_ == 2) {
    const double span = std::max(cascade_stage_end_ - cascade_stage_start_, 1.0);
    const double x = std::min(1.0, (t - cascade_stage_start_) / span);
    mult *= 1.0 + 0.6 * x;
  } else if (cascade_stage_ == 3) {
    const double span = std::max(cascade_stage_end_ - cascade_stage_start_, 1.0);
    const double x = std::min(1.0, (t - cascade_stage_start_) / span);
    mult *= 1.6 + 6.4 * x;
  } else if (cascade_stage_ > 3) {
    mult *= 8.0;  // broken until repaired
  }
  return mult;
}

double ServiceNode::advance(double t, double dt, double utilization,
                            std::vector<mon::ErrorEvent>& events) {
  if (!available(t)) return 1.0;  // restarting/being repaired: no dynamics

  // --- overload error reporting ---------------------------------------------
  // High-watermark alarms are edge-triggered (one report on crossing) with
  // sparse repeats while the condition persists — real monitoring rate-
  // limits its alerts.
  if (utilization > 0.80 &&
      (prev_util_ <= 0.80 || rng_->uniform() < dt / 600.0)) {
    emit(events, t + rng_->uniform(0.0, dt), event_id::kQueueHigh, 3);
  }
  if (utilization > 0.90 &&
      (prev_util_ <= 0.90 || rng_->uniform() < dt / 300.0)) {
    emit(events, t + rng_->uniform(0.0, dt), event_id::kTimeout, 4);
  }
  prev_util_ = utilization;

  // --- fault onsets ---------------------------------------------------------
  if (t >= next_leak_onset_ && leak_rate_ == 0.0) {
    leak_rate_ = rng_->uniform(config_->leak_min_rate, config_->leak_max_rate);
    next_leak_onset_ =
        t + rng_->exponential(1.0 / config_->leak_mtbf);  // for after repair
  }
  if (t >= next_cascade_onset_ && cascade_stage_ == 0) {
    enter_cascade_stage(t, 1, events);
    next_cascade_onset_ = t + rng_->exponential(1.0 / config_->cascade_mtbf);
  }

  // --- leak progression -------------------------------------------------------
  if (leak_rate_ > 0.0) {
    leaked_mb_ = std::min(leaked_mb_ + leak_rate_ * dt,
                          config_->node_memory_mb);
    const double pressure = memory_pressure();
    // Pressure-driven error reporting with increasing intensity.
    auto emit_with_rate = [&](double threshold, double mean_interval,
                              std::int32_t eid, std::int32_t sev) {
      if (pressure > threshold &&
          rng_->uniform() < dt / mean_interval) {
        emit(events, t + rng_->uniform(0.0, dt), eid, sev);
      }
    };
    emit_with_rate(0.70, 600.0, event_id::kMemLow, 2);
    emit_with_rate(0.80, 400.0, event_id::kAllocSlow, 3);
    emit_with_rate(0.85, 240.0, event_id::kGcThrash, 4);
  }

  // --- cascade progression ------------------------------------------------------
  if (cascade_stage_ >= 1 && cascade_stage_ <= 3 && t >= cascade_stage_end_) {
    if (cascade_stage_ < 3) {
      enter_cascade_stage(t, cascade_stage_ + 1, events);
    } else {
      cascade_stage_ = 4;  // broken; stays until repair
    }
  }
  // Sporadic repeats of the current stage's signature event.
  if (cascade_stage_ >= 1 && cascade_stage_ <= 3 &&
      rng_->uniform() < dt / 400.0) {
    static constexpr std::int32_t kStageIds[] = {
        event_id::kCascadeStage1, event_id::kCascadeStage2,
        event_id::kCascadeStage3};
    emit(events, t + rng_->uniform(0.0, dt), kStageIds[cascade_stage_ - 1], 2);
  }

  // --- benign noise ------------------------------------------------------------
  while (t + dt > next_noise_) {
    const auto eid = event_id::kNoiseBase +
                     static_cast<std::int32_t>(
                         rng_->uniform_int(0, event_id::kNoiseCount - 1));
    // A fraction of benign events carries high severity (operators know
    // severity fields in real logs are unreliable failure indicators).
    const std::int32_t severity = rng_->uniform() < 0.08 ? 4 : 1;
    emit(events, next_noise_, eid, severity);
    // Real logging is bursty: benign messages often repeat in quick
    // succession. This denies count-based heuristics a free separation
    // between benign and failure-prone windows.
    if (rng_->uniform() < 0.4) {
      const auto burst = 2 + rng_->poisson(4.0);
      double bt = next_noise_;
      for (std::int64_t b = 0; b < burst; ++b) {
        bt += rng_->exponential(1.0 / 20.0);
        pending_.push_back(mon::ErrorEvent{bt, eid, id_, severity});
      }
    }
    next_noise_ += rng_->exponential(config_->noise_event_rate);
  }
  // Release scheduled burst events that fall into this tick.
  if (!pending_.empty()) {
    std::sort(pending_.begin(), pending_.end(),
              [](const mon::ErrorEvent& a, const mon::ErrorEvent& b) {
                return a.time < b.time;
              });
    std::size_t released = 0;
    for (; released < pending_.size() && pending_[released].time < t + dt;
         ++released) {
      events.push_back(pending_[released]);
    }
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(released));
  }
  while (t + dt > next_lookalike_) {
    // Benign occurrences of cascade-signature ids, sometimes in pairs —
    // indistinguishable from real cascades by id sets alone; only the
    // characteristic inter-stage timing separates them.
    static constexpr std::int32_t kFirst[] = {event_id::kCascadeStage1,
                                              event_id::kCascadeStage2,
                                              event_id::kCascadeStage2b};
    static constexpr std::int32_t kSecond[] = {event_id::kCascadeStage2,
                                               event_id::kCascadeStage2b,
                                               event_id::kTimeout};
    emit(events, next_lookalike_, kFirst[rng_->uniform_int(0, 2)], 2);
    if (rng_->uniform() < 0.25) {
      const double follow = next_lookalike_ + rng_->exponential(1.0 / 30.0);
      pending_.push_back(mon::ErrorEvent{
          follow, kSecond[rng_->uniform_int(0, 2)], id_, 2});
    }
    next_lookalike_ += rng_->exponential(config_->lookalike_event_rate);
  }

  return degradation(t);
}

void ServiceNode::clear_faults(double t) {
  leaked_mb_ = 0.0;
  leak_rate_ = 0.0;
  cascade_stage_ = 0;
  pending_.clear();  // scheduled burst events of cleared faults
  // Fresh onset clocks from now.
  next_leak_onset_ = t + rng_->exponential(1.0 / config_->leak_mtbf);
  next_cascade_onset_ = t + rng_->exponential(1.0 / config_->cascade_mtbf);
}

void ServiceNode::preventive_restart(double t) {
  clear_faults(t);
  down_until_ = t + config_->restart_duration;
  ++restarts_;
}

void ServiceNode::repair_reset(double t, double until) {
  clear_faults(t);
  down_until_ = until;
}

}  // namespace pfm::telecom
