#pragma once

#include <array>

#include "numerics/rng.hpp"
#include "telecom/config.hpp"

namespace pfm::telecom {

/// Generates the aggregate request arrival process: a diurnally modulated
/// Poisson stream split across the MOC/SMS/GPRS classes, with occasional
/// load spikes that ramp up over `spike_ramp` seconds.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const SimConfig& config, num::Rng& rng);

  /// Deterministic mean arrival rate at time `t` (requests/second),
  /// including diurnal modulation and any active spike, but before the
  /// Poisson draw. Also the value exposed to monitoring.
  double mean_rate(double t) const noexcept;

  /// Advances internal spike state to time `t` and draws the number of
  /// arrivals per class in the tick [t, t + dt).
  std::array<std::int64_t, kNumRequestClasses> arrivals(double t, double dt);

  /// True while a spike is in progress at time `t`.
  bool spike_active(double t) const noexcept {
    return t >= spike_start_ && t < spike_end_;
  }

  /// External load shedding: forthcoming arrivals are thinned by
  /// `fraction` (0 = none, 1 = all) until `until`.
  void shed(double fraction, double until);

  /// Requests rejected by load shedding so far.
  std::int64_t shed_count() const noexcept { return shed_count_; }

 private:
  void maybe_schedule_spike(double t);

  /// Mean rate ignoring load shedding (for accounting rejected requests).
  double unshed_rate(double t) const noexcept;

  const SimConfig* config_;
  num::Rng* rng_;
  // Class mix: MOC-heavy, as in an SCP.
  std::array<double, kNumRequestClasses> class_mix_{0.5, 0.3, 0.2};
  double next_spike_ = 0.0;
  double spike_start_ = -1.0;
  double spike_end_ = -1.0;
  double spike_factor_ = 1.0;
  double shed_fraction_ = 0.0;
  double shed_until_ = -1.0;
  std::int64_t shed_count_ = 0;
};

}  // namespace pfm::telecom
