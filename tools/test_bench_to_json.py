#!/usr/bin/env python3
"""Unit tests for tools/bench_to_json.py (stdlib unittest; also runs
under pytest). Wired into ctest as ToolsBenchToJson and into the lint
workflow's observability job.

The interesting properties:
  - scraping tolerates garbage and keeps valid records;
  - a missing binary or a bench with no JSON rows exits non-zero
    *before* any BENCH_*.json is written (no partial refresh);
  - the fleet-path regression gate fires on a >10% loss against the
    reference path or against the committed baseline, and skips
    cleanly when the baseline predates the fleet_path arm;
  - the shard-scaling gate fires when the 8-shard/8-thread event-driven
    run is not >=1.5x faster than the 8-thread lockstep baseline, and
    refuses to compare rows from different fleet sizes;
  - the churn-overhead gate fires when the armed-but-idle elastic
    membership arm costs >5%, when its policy fired (the ratio is then
    not an overhead measurement), or when the arm's row is missing;
  - the quality-overhead gate fires when the online scoreboard arm
    costs >5%, when it resolved no instants (the ratio is then not an
    overhead measurement), or when the arm's row is missing;
  - the simd-sweep gate fires when a vector backend beats the scalar
    sweep by less than 2x, skips (passes) on the scalar fallback, and
    fails when the row is missing entirely;
  - the frozen-serving gate fires when the artifact serving rate drops
    below 0.7x the live engine's, or when the row is missing;
  - benches sharing an output file (the three fleet benches all feed
    BENCH_fleet.json) merge into one array in bench order, never
    clobbering each other.
"""

import json
import os
import pathlib
import stat
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import bench_to_json  # noqa: E402


def path_rows(ref_wall, opt_wall):
    return [
        {"bench": "fleet_path", "path": "reference", "threads": 8,
         "wall_seconds": ref_wall},
        {"bench": "fleet_path", "path": "optimized", "threads": 8,
         "wall_seconds": opt_wall},
    ]


def shard_rows(lockstep_wall, event_wall, nodes=512, event_nodes=None):
    return [
        {"bench": "fleet_shard_scaling", "mode": "lockstep", "nodes": nodes,
         "shards": 1, "threads": 8, "wall_seconds": lockstep_wall},
        {"bench": "fleet_shard_scaling", "mode": "event",
         "nodes": event_nodes if event_nodes is not None else nodes,
         "shards": 8, "threads": 8, "wall_seconds": event_wall},
    ]


class ScrapeTest(unittest.TestCase):
    def test_keeps_valid_lines_and_skips_garbage(self):
        text = "\n".join([
            "== some table ==",
            '{"bench":"fleet_throughput","threads":1,"wall_seconds":1.0}',
            '{"bench":"broken", unparsable}',
            "  threads  wall [s]",
            '  {"bench":"fleet_path","path":"optimized","wall_seconds":0.5}',
            '{"not_a_bench":"x"}',
        ])
        records = bench_to_json.scrape_json_lines(text)
        self.assertEqual(len(records), 2)
        self.assertEqual(records[0]["bench"], "fleet_throughput")
        self.assertEqual(records[1]["path"], "optimized")


class PathGateTest(unittest.TestCase):
    def test_speedup_is_reference_over_optimized(self):
        self.assertAlmostEqual(
            bench_to_json.path_speedup(path_rows(1.5, 1.0)), 1.5)

    def test_incomplete_arm_yields_none_and_fails_the_gate(self):
        rows = path_rows(1.5, 1.0)[:1]
        self.assertIsNone(bench_to_json.path_speedup(rows))
        with self.assertRaises(SystemExit):
            bench_to_json.check_path_regression(rows, [])

    def test_optimized_much_slower_than_reference_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_path_regression(path_rows(1.0, 1.2), [])

    def test_regression_against_committed_baseline_fails(self):
        fresh = path_rows(1.05, 1.0)      # 1.05x now
        baseline = path_rows(1.5, 1.0)    # 1.50x committed; floor 1.35x
        with self.assertRaises(SystemExit):
            bench_to_json.check_path_regression(fresh, baseline)

    def test_within_budget_passes(self):
        fresh = path_rows(1.40, 1.0)
        baseline = path_rows(1.5, 1.0)
        bench_to_json.check_path_regression(fresh, baseline)

    def test_baseline_without_path_arm_skips_the_comparison(self):
        fresh = path_rows(1.1, 1.0)
        baseline = [{"bench": "fleet_throughput", "threads": 8,
                     "wall_seconds": 1.0}]
        bench_to_json.check_path_regression(fresh, baseline)


class ShardGateTest(unittest.TestCase):
    def test_speedup_is_lockstep_over_event(self):
        self.assertAlmostEqual(
            bench_to_json.shard_speedup(shard_rows(3.0, 1.5)), 2.0)

    def test_missing_rows_yield_none_and_fail_the_gate(self):
        rows = shard_rows(3.0, 1.5)[:1]
        self.assertIsNone(bench_to_json.shard_speedup(rows))
        with self.assertRaises(SystemExit):
            bench_to_json.check_shard_scaling(rows)

    def test_mismatched_fleet_sizes_are_not_comparable(self):
        rows = shard_rows(3.0, 1.5, nodes=512, event_nodes=100000)
        self.assertIsNone(bench_to_json.shard_speedup(rows))

    def test_extra_rows_of_other_shapes_are_ignored(self):
        rows = shard_rows(3.0, 1.5)
        rows.append({"bench": "fleet_shard_scaling", "mode": "event",
                     "nodes": 512, "shards": 4, "threads": 8,
                     "wall_seconds": 0.01})
        rows.append({"bench": "fleet_shard_scaling", "mode": "event",
                     "nodes": 512, "shards": 8, "threads": 1,
                     "wall_seconds": 9.0})
        self.assertAlmostEqual(bench_to_json.shard_speedup(rows), 2.0)

    def test_speedup_below_floor_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_shard_scaling(shard_rows(1.4, 1.0))

    def test_speedup_at_or_above_floor_passes(self):
        bench_to_json.check_shard_scaling(shard_rows(1.5, 1.0))
        bench_to_json.check_shard_scaling(shard_rows(2.0, 1.0))


def simd_row(speedup, backend="avx2"):
    return {"bench": "simd_kernel_sweep", "backend": backend,
            "kernels": 64, "dim": 8, "batch": 4096,
            "scalar_seconds": speedup, "simd_seconds": 1.0,
            "speedup": speedup}


def frozen_row(ratio):
    return {"bench": "frozen_serving", "backend": "avx2",
            "kernels": 64, "dim": 8, "batch": 2048,
            "live_scores_per_second": 1.0e6,
            "frozen_scores_per_second": 1.0e6 * ratio, "ratio": ratio}


class SimdGateTest(unittest.TestCase):
    def test_vector_backend_at_or_above_floor_passes(self):
        bench_to_json.check_simd_sweep([simd_row(2.0)])
        bench_to_json.check_simd_sweep([simd_row(3.7, backend="neon")])

    def test_vector_backend_below_floor_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_simd_sweep([simd_row(1.8)])

    def test_scalar_fallback_skips_the_gate_even_when_slow(self):
        # Nothing was vectorized, so there is no 2x claim to enforce.
        bench_to_json.check_simd_sweep([simd_row(0.9, backend="scalar")])

    def test_missing_row_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_simd_sweep(
                [{"bench": "fleet_throughput", "wall_seconds": 1.0}])


class FrozenServingGateTest(unittest.TestCase):
    def test_ratio_at_or_above_floor_passes(self):
        bench_to_json.check_frozen_serving([frozen_row(0.7)])
        bench_to_json.check_frozen_serving([frozen_row(1.02)])

    def test_ratio_below_floor_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_frozen_serving([frozen_row(0.5)])

    def test_missing_row_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_frozen_serving(
                [{"bench": "fleet_throughput", "wall_seconds": 1.0}])


class ObsOverheadTest(unittest.TestCase):
    def test_overhead_above_budget_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_obs_overhead(
                [{"bench": "fleet_obs_overhead", "overhead_pct": 7.5}])

    def test_overhead_within_budget_passes(self):
        bench_to_json.check_obs_overhead(
            [{"bench": "fleet_obs_overhead", "overhead_pct": 1.2}])


def churn_overhead_row(overhead_pct, policy_joins=0):
    return {"bench": "fleet_churn_overhead", "nodes": 16,
            "baseline_seconds": 1.0,
            "observed_seconds": 1.0 + overhead_pct / 100.0,
            "overhead_pct": overhead_pct, "policy_joins": policy_joins}


def quality_overhead_row(overhead_pct, instants_resolved=4000):
    return {"bench": "fleet_quality_overhead", "nodes": 16,
            "baseline_seconds": 1.0,
            "observed_seconds": 1.0 + overhead_pct / 100.0,
            "overhead_pct": overhead_pct,
            "instants_resolved": instants_resolved}


class QualityGateTest(unittest.TestCase):
    def test_overhead_within_budget_passes(self):
        bench_to_json.check_quality_overhead([quality_overhead_row(1.3)])

    def test_negative_overhead_passes(self):
        bench_to_json.check_quality_overhead([quality_overhead_row(-0.8)])

    def test_overhead_above_budget_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_quality_overhead([quality_overhead_row(5.9)])

    def test_idle_scoreboard_invalidates_the_measurement(self):
        # Even a cheap run is rejected when the scoreboard resolved no
        # instants: the observed arm did none of the work being costed.
        with self.assertRaises(SystemExit):
            bench_to_json.check_quality_overhead(
                [quality_overhead_row(0.1, instants_resolved=0)])

    def test_missing_overhead_row_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_quality_overhead(
                [{"bench": "fleet_quality", "precision": 1.0}])


class ChurnGateTest(unittest.TestCase):
    def test_overhead_within_budget_passes(self):
        bench_to_json.check_churn_overhead([churn_overhead_row(1.7)])

    def test_negative_overhead_passes(self):
        bench_to_json.check_churn_overhead([churn_overhead_row(-2.4)])

    def test_overhead_above_budget_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_churn_overhead([churn_overhead_row(6.3)])

    def test_policy_that_fired_invalidates_the_measurement(self):
        # Even a cheap run is rejected when the "idle" policy joined
        # nodes: the two arms no longer did the same work.
        with self.assertRaises(SystemExit):
            bench_to_json.check_churn_overhead(
                [churn_overhead_row(0.1, policy_joins=2)])

    def test_missing_overhead_row_fails(self):
        with self.assertRaises(SystemExit):
            bench_to_json.check_churn_overhead(
                [{"bench": "fleet_churn", "mode": "static",
                  "wall_seconds": 1.0}])


class MainAtomicityTest(unittest.TestCase):
    """main() must not write any BENCH_*.json until everything passed."""

    def run_main(self, build_dir, out_dir, extra=()):
        argv = ["bench_to_json.py", "--build-dir", str(build_dir),
                "--out-dir", str(out_dir), *extra]
        old = sys.argv
        sys.argv = argv
        try:
            bench_to_json.main()
        finally:
            sys.argv = old

    def fake_bench(self, bench_dir, name, lines):
        path = bench_dir / name
        body = "#!/bin/sh\n" + "".join(f"echo '{line}'\n" for line in lines)
        path.write_text(body)
        path.chmod(path.stat().st_mode | stat.S_IEXEC)

    def good_fleet_lines(self):
        return [
            json.dumps({"bench": "fleet_throughput", "threads": 8,
                        "wall_seconds": 1.0}),
            json.dumps({"bench": "fleet_path", "path": "reference",
                        "wall_seconds": 1.2}),
            json.dumps({"bench": "fleet_path", "path": "optimized",
                        "wall_seconds": 1.0}),
            *(json.dumps(row) for row in shard_rows(3.0, 1.5)),
            json.dumps(simd_row(2.4)),
            json.dumps(frozen_row(0.98)),
        ]

    def good_churn_lines(self):
        return [
            json.dumps({"bench": "fleet_churn", "mode": "static",
                        "churn_events_per_day": 4.0, "wall_seconds": 1.0}),
            json.dumps(churn_overhead_row(1.0)),
        ]

    def good_quality_lines(self):
        return [
            json.dumps({"bench": "fleet_quality", "nodes": 16,
                        "precision": 0.9, "recall": 0.8,
                        "model_availability": 0.999}),
            json.dumps(quality_overhead_row(1.0)),
        ]

    def test_missing_binary_exits_nonzero_and_writes_nothing(self):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = pathlib.Path(tmp)
            (tmp / "build" / "bench").mkdir(parents=True)
            out = tmp / "out"
            with self.assertRaises(SystemExit):
                self.run_main(tmp / "build", out)
            self.assertFalse(out.exists())

    def test_bench_with_no_rows_exits_nonzero_and_writes_nothing(self):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = pathlib.Path(tmp)
            bench_dir = tmp / "build" / "bench"
            bench_dir.mkdir(parents=True)
            self.fake_bench(bench_dir, "bench_fleet_throughput",
                            self.good_fleet_lines())
            self.fake_bench(bench_dir, "bench_fleet_churn",
                            self.good_churn_lines())
            self.fake_bench(bench_dir, "bench_fleet_quality",
                            self.good_quality_lines())
            self.fake_bench(bench_dir, "bench_fault_injection",
                            ["no json here"])
            out = tmp / "out"
            with self.assertRaises(SystemExit):
                self.run_main(tmp / "build", out)
            # The fleet benches succeeded, but their output must not have
            # been committed when the injection bench produced nothing.
            self.assertFalse((out / "BENCH_fleet.json").exists())

    def test_happy_path_writes_both_files(self):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = pathlib.Path(tmp)
            bench_dir = tmp / "build" / "bench"
            bench_dir.mkdir(parents=True)
            self.fake_bench(bench_dir, "bench_fleet_throughput",
                            self.good_fleet_lines())
            self.fake_bench(bench_dir, "bench_fleet_churn",
                            self.good_churn_lines())
            self.fake_bench(bench_dir, "bench_fleet_quality",
                            self.good_quality_lines())
            self.fake_bench(bench_dir, "bench_fault_injection",
                            [json.dumps({"bench": "injection", "arm": "x"})])
            out = tmp / "out"
            self.run_main(tmp / "build", out)
            fleet = json.loads((out / "BENCH_fleet.json").read_text())
            # All three fleet benches merged into one array, in BENCHES
            # order: throughput rows, then churn, then quality.
            self.assertEqual(len(fleet), 11)
            self.assertEqual(fleet[0]["bench"], "fleet_throughput")
            self.assertEqual(fleet[5]["bench"], "simd_kernel_sweep")
            self.assertEqual(fleet[6]["bench"], "frozen_serving")
            self.assertEqual(fleet[7]["bench"], "fleet_churn")
            self.assertEqual(fleet[8]["bench"], "fleet_churn_overhead")
            self.assertEqual(fleet[9]["bench"], "fleet_quality")
            self.assertEqual(fleet[10]["bench"], "fleet_quality_overhead")
            injection = json.loads((out / "BENCH_injection.json").read_text())
            self.assertEqual(injection[0]["bench"], "injection")

    def test_explicit_baseline_gates_the_refresh(self):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = pathlib.Path(tmp)
            bench_dir = tmp / "build" / "bench"
            bench_dir.mkdir(parents=True)
            self.fake_bench(bench_dir, "bench_fleet_throughput",
                            self.good_fleet_lines())  # 1.2x speedup
            self.fake_bench(bench_dir, "bench_fleet_churn",
                            self.good_churn_lines())
            self.fake_bench(bench_dir, "bench_fleet_quality",
                            self.good_quality_lines())
            self.fake_bench(bench_dir, "bench_fault_injection",
                            [json.dumps({"bench": "injection"})])
            committed = tmp / "BENCH_fleet.json"
            committed.write_text(json.dumps(path_rows(2.0, 1.0)))  # 2.0x
            out = tmp / "out"
            with self.assertRaises(SystemExit):
                self.run_main(tmp / "build", out,
                              extra=("--baseline", str(committed)))
            self.assertFalse(out.exists())


if __name__ == "__main__":
    # Quiet the bench stdout passthrough during the atomicity tests;
    # unittest itself reports on stderr.
    with open(os.devnull, "w") as devnull:
        stdout = sys.stdout
        sys.stdout = devnull
        try:
            unittest.main()
        finally:
            sys.stdout = stdout
