#pragma once

// pfm-analyze lexing layer: loads one translation unit into a per-line
// "code view" (comments and string/char literals blanked to spaces so
// columns survive), extracts the pfm-lint suppression directives and the
// pfm-hot / pfm-cold hot-path markers from comment text, and exposes the
// small lexical helpers every rule shares.
//
// The lexer is deliberately line-synchronous: every newline in the input
// produces exactly one entry in `code`/`raw`/`allow`/`marks`, whatever
// state (block comment, raw string, spliced line comment) the lexer is
// in — so a finding's line number can never desync from the editor's.

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace pfm::lint {

struct SourceFile {
  // Per-line marker bits parsed from comment text.
  static constexpr unsigned char kHot = 1;   // "pfm-hot"
  static constexpr unsigned char kCold = 2;  // "pfm-cold"

  std::string rel_path;                      // "src/core/mea.cpp"
  std::vector<std::string> code;             // stripped, index 0 == line 1
  std::vector<std::string> raw;              // verbatim lines (for includes,
                                             // whose targets are string
                                             // literals and thus blanked in
                                             // the code view)
  std::vector<std::set<std::string>> allow;  // per-line suppressed rules
  std::set<std::string> allow_file;          // file-wide suppressed rules
  std::vector<unsigned char> marks;          // per-line kHot/kCold bits

  bool in_src() const { return rel_path.rfind("src/", 0) == 0; }

  bool suppressed(std::size_t line, const std::string& rule) const {
    if (allow_file.count(rule) || allow_file.count("*")) return true;
    if (line == 0 || line > allow.size()) return false;
    const auto& set = allow[line - 1];
    return set.count(rule) != 0 || set.count("*") != 0;
  }

  // True when any line in [first, last] (1-based, inclusive) carries the
  // marker bit. Out-of-range ends are clamped.
  bool marked(std::size_t first, std::size_t last, unsigned char bit) const {
    if (first == 0) first = 1;
    if (last > marks.size()) last = marks.size();
    for (std::size_t l = first; l <= last; ++l) {
      if (marks[l - 1] & bit) return true;
    }
    return false;
  }
};

/// Lexes `path` into a SourceFile. Throws std::runtime_error when the
/// file cannot be read.
SourceFile load_source(const std::filesystem::path& path,
                       std::string rel_path);

/// Cache-aware load: reuses a previously lexed view when the file's
/// (size, mtime) is unchanged. Thread-safe; the analyzer scans files in
/// parallel and the test suite runs many trees in one process.
std::shared_ptr<const SourceFile> load_source_cached(
    const std::filesystem::path& path, std::string rel_path);

// ---------------------------------------------------------------------------
// Shared lexical helpers (operate on one line of the code view)
// ---------------------------------------------------------------------------

inline bool is_ident(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// True when code[pos..pos+token) is `token` with identifier boundaries.
bool token_at(const std::string& code, std::size_t pos,
              const std::string& token);

/// First template argument of the angle list opening at code[open] ==
/// '<' (trimmed), or "" when the list does not close on this line.
std::string first_template_arg(const std::string& code, std::size_t open);

/// Position just past the matching '>' of the list at code[open] == '<',
/// or npos when it does not close on this line.
std::size_t past_angle_list(const std::string& code, std::size_t open);

/// Suppression-aware append of one finding.
void emit(std::vector<Finding>* findings, const SourceFile& file,
          std::size_t line, const std::string& rule, const std::string& check,
          std::string message);

}  // namespace pfm::lint
