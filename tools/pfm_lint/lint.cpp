#include "lint.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <regex>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "model.hpp"
#include "source.hpp"

namespace pfm::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule: layering
// ---------------------------------------------------------------------------

// The module dependency policy — THE single source of truth (tests and
// the telecom-free-core guarantee assert through it). A module may
// always include itself. Key absences are the point:
//   core      never sees telecom/, runtime/ or injection/ (MEA stays
//             simulator-free; PR 1's seam);
//   numerics  is a leaf;
//   injection wraps the public contracts (core/prediction/actions) only,
//             so fault decorators can never reach around the interfaces;
//   membership describes churn plans and elasticity policy against the
//             ManagedSystem contract alone (core/numerics) — like
//             injection it is a plan vocabulary, never an engine, so it
//             must not see telecom/, runtime/ or obs/;
//   runtime   may bind everything except injection (fault plans stay a
//             caller concern, never a runtime dependency) — membership
//             is allowed: churn plans are executed by the fleet loop
//             itself, unlike fault plans which wrap it from outside, and
//             ctmc is allowed since PR 9: the fleet feeds its live
//             windowed prediction quality into the Eq. 8 availability
//             model (the self-assessment loop of DESIGN.md §12);
//   obs       sits just above numerics: instrumented layers (core,
//             injection, runtime) may include it, but it must never
//             reach back into what it observes — an obs -> telecom (or
//             obs -> core) include is a layering finding.
const std::map<std::string, std::set<std::string>>& allowed_deps() {
  static const std::map<std::string, std::set<std::string>> kPolicy = {
      {"numerics", {}},
      {"obs", {"numerics"}},
      {"ctmc", {"numerics"}},
      {"monitoring", {"numerics"}},
      {"eval", {"monitoring", "numerics"}},
      {"telecom", {"monitoring", "numerics"}},
      {"prediction", {"eval", "monitoring", "numerics"}},
      {"actions", {"core", "numerics"}},
      {"core", {"actions", "monitoring", "numerics", "obs", "prediction"}},
      {"injection", {"actions", "core", "obs", "prediction"}},
      {"membership", {"core", "numerics"}},
      {"runtime",
       {"actions", "core", "ctmc", "eval", "membership", "monitoring",
        "numerics", "obs", "prediction", "telecom"}},
  };
  return kPolicy;
}

void rule_layering(const SourceFile& file, std::vector<Finding>* findings) {
  if (!file.in_src()) return;  // tests/bench may bind any module

  // "src/<module>/..." — files directly under src/ have no module.
  const std::string path_tail = file.rel_path.substr(4);
  const auto slash = path_tail.find('/');
  if (slash == std::string::npos) return;
  const std::string module = path_tail.substr(0, slash);

  const auto& policy = allowed_deps();
  const auto entry = policy.find(module);
  if (entry == policy.end()) {
    emit(findings, file, 1, "layering", "unknown-module",
         "module 'src/" + module +
             "/' is not in the dependency policy; extend allowed_deps() in "
             "tools/pfm_lint/lint.cpp deliberately");
    return;
  }

  // File-prefix overrides: a few files carry a stricter contract than
  // their module at large. The event-scheduler core (runtime/schedule.*)
  // is pure sequential data-structure code — standard library only, so
  // the determinism argument never depends on what a calendar tick may
  // reach; the shard controller (runtime/shard.*) may bind everything
  // runtime may EXCEPT telecom/ and ctmc/ — shards schedule any
  // ManagedSystem and must stay simulator-agnostic, and the Eq. 8 model
  // feed is the owning controller's job, not a shard's.
  static const std::map<std::string, std::set<std::string>> kFileOverrides = {
      {"src/runtime/schedule.", {}},
      {"src/runtime/shard.",
       {"actions", "core", "eval", "monitoring", "numerics", "obs",
        "prediction"}},
  };
  const std::set<std::string>* allowed = &entry->second;
  std::string scope = "src/" + module + "/";
  for (const auto& [prefix, deps] : kFileOverrides) {
    if (file.rel_path.rfind(prefix, 0) == 0) {
      allowed = &deps;
      scope = prefix + "*";
      break;
    }
  }

  // The directive must survive in the code view (i.e. not be commented
  // out), but the target itself is a string literal and only exists in
  // the raw view.
  static const std::regex kDirectivePrefix(R"(^\s*#\s*include\s)");
  static const std::regex kInclude(R"(^\s*#\s*include\s*\"([^\"]+)\")");
  for (std::size_t l = 0; l < file.code.size(); ++l) {
    if (!std::regex_search(file.code[l], kDirectivePrefix)) continue;
    std::smatch m;
    if (!std::regex_search(file.raw[l], m, kInclude)) continue;
    const std::string target = m[1].str();
    const auto target_slash = target.find('/');
    if (target_slash == std::string::npos) continue;  // local header
    const std::string target_module = target.substr(0, target_slash);
    if (target_module == module) continue;
    if (!policy.count(target_module)) continue;  // not a project module
    if (!allowed->count(target_module)) {
      emit(findings, file, l + 1, "layering", "forbidden-include",
           scope + " must not include \"" + target +
               "\" (allowed: self" +
               [&] {
                 std::string list;
                 for (const auto& dep : *allowed) list += ", " + dep;
                 return list;
               }() +
               ")");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------------

void rule_determinism(const SourceFile& file, std::vector<Finding>* findings) {
  struct Banned {
    const char* token;
    bool needs_call;  // must be followed by '(' — bare words are fine
    const char* why;
  };
  static const Banned kBanned[] = {
      {"rand", true, "libc rand() is process-global and unseeded per node"},
      {"srand", true, "libc srand() mutates process-global state"},
      {"random_device", false,
       "std::random_device is platform entropy, never reproducible"},
      {"system_clock", false,
       "wall-clock time leaks host state into results; pass sim time "
       "explicitly (steady_clock is fine for latency telemetry)"},
  };

  // Names declared in this file as unordered containers, for the
  // iteration check (lexical, file-local — good enough for a codebase
  // that keeps declarations near their loops).
  std::set<std::string> unordered_names;

  for (std::size_t l = 0; l < file.code.size(); ++l) {
    const std::string& code = file.code[l];

    for (const auto& ban : kBanned) {
      for (std::size_t pos = code.find(ban.token); pos != std::string::npos;
           pos = code.find(ban.token, pos + 1)) {
        if (!token_at(code, pos, ban.token)) continue;
        if (ban.needs_call) {
          std::size_t after = pos + std::strlen(ban.token);
          while (after < code.size() && code[after] == ' ') ++after;
          if (after >= code.size() || code[after] != '(') continue;
        }
        emit(findings, file, l + 1, "determinism", "banned-token",
             std::string(ban.token) + " is banned: " + ban.why +
                 "; use a seeded numerics::SplitMix64 stream");
      }
    }

    // Address-keyed containers: map/set (ordered or not) whose first
    // template argument is a pointer type. Iteration order — and for
    // unordered containers even bucket layout — then depends on
    // allocation addresses.
    static const char* kContainers[] = {"unordered_map", "unordered_set",
                                        "unordered_multimap",
                                        "unordered_multiset", "map", "set",
                                        "multimap", "multiset"};
    for (const char* name : kContainers) {
      for (std::size_t pos = code.find(name); pos != std::string::npos;
           pos = code.find(name, pos + 1)) {
        if (!token_at(code, pos, name)) continue;
        std::size_t open = pos + std::strlen(name);
        while (open < code.size() && code[open] == ' ') ++open;
        if (open >= code.size() || code[open] != '<') continue;
        const std::string key = first_template_arg(code, open);
        if (!key.empty() && key.back() == '*') {
          emit(findings, file, l + 1, "determinism", "address-keyed",
               std::string(name) + "<" + key +
                   ", ...> is keyed by object addresses; key by a stable id "
                   "instead");
        }
      }
    }

    // Collect unordered-container variable names: `unordered_map<...> x`
    // (declaration), for the iteration check below.
    if (file.in_src()) {
      for (const char* name : {"unordered_map", "unordered_set",
                               "unordered_multimap", "unordered_multiset"}) {
        for (std::size_t pos = code.find(name); pos != std::string::npos;
             pos = code.find(name, pos + 1)) {
          if (!token_at(code, pos, name)) continue;
          std::size_t open = pos + std::strlen(name);
          while (open < code.size() && code[open] == ' ') ++open;
          if (open >= code.size() || code[open] != '<') continue;
          std::size_t after = past_angle_list(code, open);
          if (after == std::string::npos) continue;
          while (after < code.size() &&
                 (code[after] == ' ' || code[after] == '&')) {
            ++after;
          }
          std::size_t end = after;
          while (end < code.size() && is_ident(code[end])) ++end;
          if (end > after) {
            unordered_names.insert(code.substr(after, end - after));
          }
        }
      }
    }
  }

  // Iteration over unordered containers inside src/: a range-for whose
  // range expression names a container declared unordered in this file.
  // Reduce paths must visit elements in a stable order; iterate a sorted
  // key list or switch to an ordered/indexed container.
  if (file.in_src() && !unordered_names.empty()) {
    static const std::regex kRangeFor(R"(\bfor\s*\(([^;)]*):([^;]*)\))");
    for (std::size_t l = 0; l < file.code.size(); ++l) {
      std::smatch m;
      const std::string& code = file.code[l];
      if (!std::regex_search(code, m, kRangeFor)) continue;
      const std::string range = m[2].str();
      for (const auto& name : unordered_names) {
        std::size_t pos = range.find(name);
        while (pos != std::string::npos && !token_at(range, pos, name)) {
          pos = range.find(name, pos + 1);
        }
        if (pos != std::string::npos) {
          emit(findings, file, l + 1, "determinism", "unordered-iteration",
               "iterating unordered container '" + name +
                   "' — order is implementation-defined and would leak into "
                   "any reduce; iterate sorted keys instead");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: concurrency
// ---------------------------------------------------------------------------

void rule_concurrency(const SourceFile& file, std::vector<Finding>* findings) {
  // The pool's per-task capture sites are the one place catch (...) is
  // the design (exceptions become exception_ptr slots, every index still
  // runs). Everywhere else it needs an explicit allow.
  const bool capture_site = file.rel_path == "src/runtime/thread_pool.cpp";

  // The only src/ files that may touch raw threading primitives: the
  // pool itself and the annotated MutexLock wrapper it hands out for
  // condition_variable interop.
  const bool thread_site = file.rel_path == "src/runtime/thread_pool.cpp" ||
                           file.rel_path == "src/runtime/thread_pool.hpp" ||
                           file.rel_path == "src/runtime/annotations.hpp";

  static const std::regex kCatchAll(R"(\bcatch\s*\(\s*\.\.\.\s*\))");
  static const std::regex kStaticDecl(R"(^\s*(inline\s+)?static\s+\w)");

  for (std::size_t l = 0; l < file.code.size(); ++l) {
    const std::string& code = file.code[l];

    if (!capture_site && std::regex_search(code, kCatchAll)) {
      emit(findings, file, l + 1, "concurrency", "catch-all",
           "catch (...) swallows every failure mode; outside the "
           "ThreadPool capture sites, catch concrete exception types (or "
           "pfm-lint: allow(concurrency) with a reason)");
    }

    if (!file.in_src()) continue;  // the checks below are src/-only

    // Raw threading primitives outside the pool. Persistent-worker
    // state (generation counters, parked workers, shard cursors) only
    // stays coherent behind the pool's annotated handshake; a stray
    // std::thread, std::async or condition_variable bypasses all of
    // it — async in particular spawns an unpooled thread whose join
    // point (the future's destructor) is invisible to the epoch
    // barrier.
    if (!thread_site) {
      for (const char* name : {"std::thread", "std::jthread", "std::async",
                               "condition_variable"}) {
        for (std::size_t pos = code.find(name); pos != std::string::npos;
             pos = code.find(name, pos + 1)) {
          if (!token_at(code, pos, name)) continue;
          emit(findings, file, l + 1, "concurrency", "raw-thread",
               std::string(name) +
                   " outside src/runtime/thread_pool — spawn threads only "
                   "through runtime::ThreadPool; persistent-worker state "
                   "must live behind its annotated handshake");
        }
      }
    }

    for (std::size_t pos = code.find("volatile"); pos != std::string::npos;
         pos = code.find("volatile", pos + 1)) {
      if (!token_at(code, pos, "volatile")) continue;
      emit(findings, file, l + 1, "concurrency", "volatile",
           "volatile is not a synchronization primitive; use std::atomic "
           "or a mutex");
    }

    // Mutable static-duration state: `static T x...` that is not const,
    // constexpr, thread_local or atomic, and is a variable (no parameter
    // list before the declarator ends → not a function/method
    // declaration). Shared counters belong in per-task slots, atomics,
    // or behind a PFM_GUARDED_BY-annotated lock.
    if (std::regex_search(code, kStaticDecl)) {
      const bool immutable =
          code.find("const") != std::string::npos ||       // const/constexpr/
          code.find("constinit") != std::string::npos;     //   constexpr'd init
      const bool thread_local_var =
          code.find("thread_local") != std::string::npos;
      const bool atomic = code.find("atomic") != std::string::npos;
      const std::size_t stop = code.find_first_of(";={");
      const std::size_t paren = code.find('(');
      // No terminator on this line → the declaration continues; a purely
      // lexical pass cannot judge it, so stay quiet (src/ keeps static
      // declarators on one line).
      const bool undecidable = stop == std::string::npos;
      const bool function_decl = paren != std::string::npos && paren < stop;
      if (!immutable && !thread_local_var && !atomic && !undecidable &&
          !function_decl) {
        emit(findings, file, l + 1, "concurrency", "mutable-static",
             "mutable static state is shared across every thread and "
             "fleet node; use per-task slots, std::atomic, or a "
             "PFM_GUARDED_BY-annotated lock");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

using FileRuleFn = void (*)(const SourceFile&, std::vector<Finding>*);
using GraphRuleFn = void (*)(const ProjectModel&, std::vector<Finding>*);

struct RuleEntry {
  std::string name;
  FileRuleFn file_rule = nullptr;    // exactly one of the two is set
  GraphRuleFn graph_rule = nullptr;
};

const std::vector<RuleEntry>& rule_table() {
  static const std::vector<RuleEntry> kRules = {
      {"layering", &rule_layering, nullptr},
      {"determinism", &rule_determinism, nullptr},
      {"concurrency", &rule_concurrency, nullptr},
      {"hotpath", nullptr, &rule_hotpath},
      {"walltaint", nullptr, &rule_walltaint},
      {"lockdiscipline", nullptr, &rule_lockdiscipline},
  };
  return kRules;
}

bool has_source_extension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& entry : rule_table()) names.push_back(entry.name);
    return names;
  }();
  return kNames;
}

std::vector<Finding> run(const Options& options) {
  RunStats stats;
  return run(options, &stats);
}

std::vector<Finding> run(const Options& options, RunStats* stats) {
  namespace fs = std::filesystem;
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<FileRuleFn> file_rules;
  std::vector<GraphRuleFn> graph_rules;
  const auto& table = rule_table();
  auto select = [&](const RuleEntry& entry) {
    if (entry.file_rule) file_rules.push_back(entry.file_rule);
    if (entry.graph_rule) graph_rules.push_back(entry.graph_rule);
  };
  if (options.rules.empty()) {
    for (const auto& entry : table) select(entry);
  } else {
    for (const auto& wanted : options.rules) {
      const auto it = std::find_if(
          table.begin(), table.end(),
          [&](const RuleEntry& entry) { return entry.name == wanted; });
      if (it == table.end()) {
        throw std::runtime_error("pfm-analyze: unknown rule '" + wanted + "'");
      }
      select(*it);
    }
  }

  if (!fs::is_directory(options.root)) {
    throw std::runtime_error("pfm-analyze: root is not a directory: " +
                             options.root.string());
  }

  // Collect the file list first (sorted, so worker partitioning and
  // output are deterministic), then lex + run per-file rules in
  // parallel. Rules are pure functions of one file; workers only merge
  // results at the join.
  struct Job {
    fs::path path;
    std::string rel;
  };
  std::vector<Job> jobs_list;
  for (const char* subtree : {"src", "tests"}) {
    const fs::path base = options.root / subtree;
    if (!fs::is_directory(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      const fs::path& path = it->path();
      if (it->is_directory()) {
        const std::string name = path.filename().string();
        if (std::find(options.exclude_dirs.begin(), options.exclude_dirs.end(),
                      name) != options.exclude_dirs.end()) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (!it->is_regular_file() || !has_source_extension(path)) continue;
      jobs_list.push_back(
          {path, fs::relative(path, options.root).generic_string()});
    }
  }
  std::sort(jobs_list.begin(), jobs_list.end(),
            [](const Job& a, const Job& b) { return a.rel < b.rel; });

  std::size_t workers = options.jobs;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers = std::min({workers, jobs_list.size(), std::size_t{16}});
  if (workers == 0) workers = 1;

  std::vector<std::shared_ptr<const SourceFile>> sources(jobs_list.size());
  std::vector<std::vector<Finding>> worker_findings(workers);
  std::vector<std::string> worker_errors(workers);
  {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          for (std::size_t i = w; i < jobs_list.size(); i += workers) {
            auto source =
                load_source_cached(jobs_list[i].path, jobs_list[i].rel);
            for (FileRuleFn rule : file_rules) {
              rule(*source, &worker_findings[w]);
            }
            sources[i] = std::move(source);
          }
        } catch (const std::exception& e) {
          worker_errors[w] = e.what();
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  for (const auto& err : worker_errors) {
    if (!err.empty()) throw std::runtime_error(err);
  }

  std::vector<Finding> findings;
  for (auto& wf : worker_findings) {
    findings.insert(findings.end(), std::make_move_iterator(wf.begin()),
                    std::make_move_iterator(wf.end()));
  }
  stats->files = jobs_list.size();
  stats->jobs = workers;
  stats->load_ms = ms_since(t0);

  // Graph rules see the src/ views of the tree (fixture trees keep
  // their seeded code under <fixture>/src/ for the same reason).
  const auto t1 = std::chrono::steady_clock::now();
  if (!graph_rules.empty()) {
    std::vector<std::shared_ptr<const SourceFile>> src_files;
    for (const auto& source : sources) {
      if (source && source->in_src()) src_files.push_back(source);
    }
    const ProjectModel model = build_model(std::move(src_files));
    stats->functions = model.functions.size();
    for (const auto& fn : model.functions) {
      stats->call_edges += fn.calls.size();
    }
    for (GraphRuleFn rule : graph_rules) rule(model, &findings);
  }
  stats->graph_ms = ms_since(t1);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule && a.check == b.check &&
                                      a.message == b.message;
                             }),
                 findings.end());
  stats->total_ms = ms_since(t0);
  return findings;
}

std::string format(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "/" + finding.check + "] " + finding.message;
}

}  // namespace pfm::lint
