#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace pfm::lint {

namespace {

// ---------------------------------------------------------------------------
// Source model: one file, split into lines, with comments and string
// literals blanked out (replaced by spaces so columns survive) and the
// pfm-lint suppression directives extracted from the comment text.
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string rel_path;                     // "src/core/mea.cpp"
  std::vector<std::string> code;            // stripped, index 0 == line 1
  std::vector<std::string> raw;             // verbatim lines (for includes,
                                            // whose targets are string
                                            // literals and thus blanked in
                                            // the code view)
  std::vector<std::set<std::string>> allow; // per-line suppressed rules
  std::set<std::string> allow_file;         // file-wide suppressed rules

  bool in_src() const { return rel_path.rfind("src/", 0) == 0; }

  bool suppressed(std::size_t line, const std::string& rule) const {
    if (allow_file.count(rule) || allow_file.count("*")) return true;
    if (line == 0 || line > allow.size()) return false;
    const auto& set = allow[line - 1];
    return set.count(rule) != 0 || set.count("*") != 0;
  }
};

// Parses "pfm-lint: allow(rule, rule)" / "pfm-lint: allow-file(rule)"
// out of one comment's text. Returns true when a directive was found.
bool parse_directive(const std::string& comment, std::set<std::string>* line_rules,
                     std::set<std::string>* file_rules) {
  static const std::regex kDirective(
      R"(pfm-lint:\s*(allow|allow-file)\s*\(([^)]*)\))");
  auto begin = std::sregex_iterator(comment.begin(), comment.end(), kDirective);
  bool found = false;
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    found = true;
    std::set<std::string>* target =
        (*it)[1].str() == "allow" ? line_rules : file_rules;
    std::stringstream names((*it)[2].str());
    std::string name;
    while (std::getline(names, name, ',')) {
      const auto first = name.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      const auto last = name.find_last_not_of(" \t");
      target->insert(name.substr(first, last - first + 1));
    }
  }
  return found;
}

// Lexes the raw text: comments and string/char literals become spaces in
// the code view; comment text is scanned for suppression directives.
// Handles //, /* */, "...", '...', and R"delim(...)delim". A directive on
// a line whose code view is blank also covers the following line.
SourceFile load_source(const std::filesystem::path& path,
                       std::string rel_path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pfm-lint: cannot read " + rel_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  SourceFile out;
  out.rel_path = std::move(rel_path);

  enum class State { Code, LineComment, BlockComment, String, Char, RawString };
  State state = State::Code;
  std::string code_line;
  std::string comment_line;  // comment text seen on the current line
  std::string raw_delim;     // for R"delim( ... )delim"

  std::string raw_line;
  auto flush_line = [&] {
    std::set<std::string> line_rules;
    parse_directive(comment_line, &line_rules, &out.allow_file);
    out.code.push_back(code_line);
    out.raw.push_back(raw_line);
    out.allow.push_back(std::move(line_rules));
    code_line.clear();
    raw_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::LineComment) state = State::Code;
      flush_line();
      continue;
    }
    raw_line += c;
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          code_line += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (code_line.empty() ||
                    (!std::isalnum(static_cast<unsigned char>(code_line.back())) &&
                     code_line.back() != '_'))) {
          // Raw string literal: find the delimiter up to the '('.
          const std::size_t paren = text.find('(', i + 2);
          const std::size_t newline = text.find('\n', i);
          if (paren == std::string::npos || newline < paren) {
            code_line += c;  // malformed; treat as plain code
          } else {
            raw_delim = ")" + text.substr(i + 2, paren - (i + 2)) + "\"";
            state = State::RawString;
            code_line += std::string(paren - i + 1, ' ');
            i = paren;  // consumed through '('
          }
        } else if (c == '"') {
          state = State::String;
          code_line += ' ';
        } else if (c == '\'') {
          state = State::Char;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::LineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::BlockComment:
        comment_line += c;
        code_line += ' ';
        if (c == '*' && next == '/') {
          state = State::Code;
          code_line += ' ';
          comment_line.pop_back();
          ++i;
        }
        break;
      case State::String:
        code_line += ' ';
        if (c == '\\' && next != '\0' && next != '\n') {
          code_line += ' ';
          ++i;
        } else if (c == '"') {
          state = State::Code;
        }
        break;
      case State::Char:
        code_line += ' ';
        if (c == '\\' && next != '\0') {
          code_line += ' ';
          ++i;
        } else if (c == '\'') {
          state = State::Code;
        }
        break;
      case State::RawString:
        code_line += ' ';
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          code_line += std::string(raw_delim.size() - 1, ' ');
          i += raw_delim.size() - 1;
          state = State::Code;
        }
        break;
    }
  }
  flush_line();  // last line (also handles files without trailing \n)

  // A directive on an otherwise-blank line covers the next line too.
  for (std::size_t l = 0; l + 1 < out.allow.size(); ++l) {
    const bool blank = out.code[l].find_first_not_of(" \t\r") ==
                       std::string::npos;
    if (blank && !out.allow[l].empty()) {
      out.allow[l + 1].insert(out.allow[l].begin(), out.allow[l].end());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared lexical helpers
// ---------------------------------------------------------------------------

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True when code[pos..pos+token) is `token` with identifier boundaries.
bool token_at(const std::string& code, std::size_t pos,
              const std::string& token) {
  if (code.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && is_ident(code[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  return end >= code.size() || !is_ident(code[end]);
}

// Finds the first template argument of the angle list opening at
// code[open] == '<'. Returns the trimmed argument text, or "" when the
// list does not close on this line (multi-line declarations are out of
// lexical reach — documented limitation).
std::string first_template_arg(const std::string& code, std::size_t open) {
  int depth = 0;
  std::size_t start = open + 1;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      --depth;
      if (depth == 0) {
        std::string arg = code.substr(start, i - start);
        const auto first = arg.find_first_not_of(" \t");
        if (first == std::string::npos) return "";
        const auto last = arg.find_last_not_of(" \t");
        return arg.substr(first, last - first + 1);
      }
    } else if (c == ',' && depth == 1) {
      std::string arg = code.substr(start, i - start);
      const auto first = arg.find_first_not_of(" \t");
      if (first == std::string::npos) return "";
      const auto last = arg.find_last_not_of(" \t");
      return arg.substr(first, last - first + 1);
    }
  }
  return "";
}

// Position just past the matching '>' of the list at code[open] == '<',
// or npos when it does not close on this line.
std::size_t past_angle_list(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

void emit(std::vector<Finding>* findings, const SourceFile& file,
          std::size_t line, const std::string& rule, const std::string& check,
          std::string message) {
  if (file.suppressed(line, rule)) return;
  findings->push_back({rule, check, file.rel_path, line, std::move(message)});
}

// ---------------------------------------------------------------------------
// Rule: layering
// ---------------------------------------------------------------------------

// The module dependency policy — THE single source of truth (tests and
// the telecom-free-core guarantee assert through it). A module may
// always include itself. Key absences are the point:
//   core      never sees telecom/, runtime/ or injection/ (MEA stays
//             simulator-free; PR 1's seam);
//   numerics  is a leaf;
//   injection wraps the public contracts (core/prediction/actions) only,
//             so fault decorators can never reach around the interfaces;
//   membership describes churn plans and elasticity policy against the
//             ManagedSystem contract alone (core/numerics) — like
//             injection it is a plan vocabulary, never an engine, so it
//             must not see telecom/, runtime/ or obs/;
//   runtime   may bind everything except injection (fault plans stay a
//             caller concern, never a runtime dependency) — membership
//             is allowed: churn plans are executed by the fleet loop
//             itself, unlike fault plans which wrap it from outside;
//   obs       sits just above numerics: instrumented layers (core,
//             injection, runtime) may include it, but it must never
//             reach back into what it observes — an obs -> telecom (or
//             obs -> core) include is a layering finding.
const std::map<std::string, std::set<std::string>>& allowed_deps() {
  static const std::map<std::string, std::set<std::string>> kPolicy = {
      {"numerics", {}},
      {"obs", {"numerics"}},
      {"ctmc", {"numerics"}},
      {"monitoring", {"numerics"}},
      {"eval", {"monitoring", "numerics"}},
      {"telecom", {"monitoring", "numerics"}},
      {"prediction", {"eval", "monitoring", "numerics"}},
      {"actions", {"core", "numerics"}},
      {"core", {"actions", "monitoring", "numerics", "obs", "prediction"}},
      {"injection", {"actions", "core", "obs", "prediction"}},
      {"membership", {"core", "numerics"}},
      {"runtime",
       {"actions", "core", "eval", "membership", "monitoring", "numerics",
        "obs", "prediction", "telecom"}},
  };
  return kPolicy;
}

void rule_layering(const SourceFile& file, std::vector<Finding>* findings) {
  if (!file.in_src()) return;  // tests/bench may bind any module

  // "src/<module>/..." — files directly under src/ have no module.
  const std::string path_tail = file.rel_path.substr(4);
  const auto slash = path_tail.find('/');
  if (slash == std::string::npos) return;
  const std::string module = path_tail.substr(0, slash);

  const auto& policy = allowed_deps();
  const auto entry = policy.find(module);
  if (entry == policy.end()) {
    emit(findings, file, 1, "layering", "unknown-module",
         "module 'src/" + module +
             "/' is not in the dependency policy; extend allowed_deps() in "
             "tools/pfm_lint/lint.cpp deliberately");
    return;
  }

  // File-prefix overrides: a few files carry a stricter contract than
  // their module at large. The event-scheduler core (runtime/schedule.*)
  // is pure sequential data-structure code — standard library only, so
  // the determinism argument never depends on what a calendar tick may
  // reach; the shard controller (runtime/shard.*) may bind everything
  // runtime may EXCEPT telecom/ — shards schedule any ManagedSystem and
  // must stay simulator-agnostic.
  static const std::map<std::string, std::set<std::string>> kFileOverrides = {
      {"src/runtime/schedule.", {}},
      {"src/runtime/shard.",
       {"actions", "core", "eval", "monitoring", "numerics", "obs",
        "prediction"}},
  };
  const std::set<std::string>* allowed = &entry->second;
  std::string scope = "src/" + module + "/";
  for (const auto& [prefix, deps] : kFileOverrides) {
    if (file.rel_path.rfind(prefix, 0) == 0) {
      allowed = &deps;
      scope = prefix + "*";
      break;
    }
  }

  // The directive must survive in the code view (i.e. not be commented
  // out), but the target itself is a string literal and only exists in
  // the raw view.
  static const std::regex kDirectivePrefix(R"(^\s*#\s*include\s)");
  static const std::regex kInclude(R"(^\s*#\s*include\s*\"([^\"]+)\")");
  for (std::size_t l = 0; l < file.code.size(); ++l) {
    if (!std::regex_search(file.code[l], kDirectivePrefix)) continue;
    std::smatch m;
    if (!std::regex_search(file.raw[l], m, kInclude)) continue;
    const std::string target = m[1].str();
    const auto target_slash = target.find('/');
    if (target_slash == std::string::npos) continue;  // local header
    const std::string target_module = target.substr(0, target_slash);
    if (target_module == module) continue;
    if (!policy.count(target_module)) continue;  // not a project module
    if (!allowed->count(target_module)) {
      emit(findings, file, l + 1, "layering", "forbidden-include",
           scope + " must not include \"" + target +
               "\" (allowed: self" +
               [&] {
                 std::string list;
                 for (const auto& dep : *allowed) list += ", " + dep;
                 return list;
               }() +
               ")");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------------

void rule_determinism(const SourceFile& file, std::vector<Finding>* findings) {
  struct Banned {
    const char* token;
    bool needs_call;  // must be followed by '(' — bare words are fine
    const char* why;
  };
  static const Banned kBanned[] = {
      {"rand", true, "libc rand() is process-global and unseeded per node"},
      {"srand", true, "libc srand() mutates process-global state"},
      {"random_device", false,
       "std::random_device is platform entropy, never reproducible"},
      {"system_clock", false,
       "wall-clock time leaks host state into results; pass sim time "
       "explicitly (steady_clock is fine for latency telemetry)"},
  };

  // Names declared in this file as unordered containers, for the
  // iteration check (lexical, file-local — good enough for a codebase
  // that keeps declarations near their loops).
  std::set<std::string> unordered_names;

  for (std::size_t l = 0; l < file.code.size(); ++l) {
    const std::string& code = file.code[l];

    for (const auto& ban : kBanned) {
      for (std::size_t pos = code.find(ban.token); pos != std::string::npos;
           pos = code.find(ban.token, pos + 1)) {
        if (!token_at(code, pos, ban.token)) continue;
        if (ban.needs_call) {
          std::size_t after = pos + std::strlen(ban.token);
          while (after < code.size() && code[after] == ' ') ++after;
          if (after >= code.size() || code[after] != '(') continue;
        }
        emit(findings, file, l + 1, "determinism", "banned-token",
             std::string(ban.token) + " is banned: " + ban.why +
                 "; use a seeded numerics::SplitMix64 stream");
      }
    }

    // Address-keyed containers: map/set (ordered or not) whose first
    // template argument is a pointer type. Iteration order — and for
    // unordered containers even bucket layout — then depends on
    // allocation addresses.
    static const char* kContainers[] = {"unordered_map", "unordered_set",
                                        "unordered_multimap",
                                        "unordered_multiset", "map", "set",
                                        "multimap", "multiset"};
    for (const char* name : kContainers) {
      for (std::size_t pos = code.find(name); pos != std::string::npos;
           pos = code.find(name, pos + 1)) {
        if (!token_at(code, pos, name)) continue;
        std::size_t open = pos + std::strlen(name);
        while (open < code.size() && code[open] == ' ') ++open;
        if (open >= code.size() || code[open] != '<') continue;
        const std::string key = first_template_arg(code, open);
        if (!key.empty() && key.back() == '*') {
          emit(findings, file, l + 1, "determinism", "address-keyed",
               std::string(name) + "<" + key +
                   ", ...> is keyed by object addresses; key by a stable id "
                   "instead");
        }
      }
    }

    // Collect unordered-container variable names: `unordered_map<...> x`
    // (declaration), for the iteration check below.
    if (file.in_src()) {
      for (const char* name : {"unordered_map", "unordered_set",
                               "unordered_multimap", "unordered_multiset"}) {
        for (std::size_t pos = code.find(name); pos != std::string::npos;
             pos = code.find(name, pos + 1)) {
          if (!token_at(code, pos, name)) continue;
          std::size_t open = pos + std::strlen(name);
          while (open < code.size() && code[open] == ' ') ++open;
          if (open >= code.size() || code[open] != '<') continue;
          std::size_t after = past_angle_list(code, open);
          if (after == std::string::npos) continue;
          while (after < code.size() &&
                 (code[after] == ' ' || code[after] == '&')) {
            ++after;
          }
          std::size_t end = after;
          while (end < code.size() && is_ident(code[end])) ++end;
          if (end > after) {
            unordered_names.insert(code.substr(after, end - after));
          }
        }
      }
    }
  }

  // Iteration over unordered containers inside src/: a range-for whose
  // range expression names a container declared unordered in this file.
  // Reduce paths must visit elements in a stable order; iterate a sorted
  // key list or switch to an ordered/indexed container.
  if (file.in_src() && !unordered_names.empty()) {
    static const std::regex kRangeFor(R"(\bfor\s*\(([^;)]*):([^;]*)\))");
    for (std::size_t l = 0; l < file.code.size(); ++l) {
      std::smatch m;
      const std::string& code = file.code[l];
      if (!std::regex_search(code, m, kRangeFor)) continue;
      const std::string range = m[2].str();
      for (const auto& name : unordered_names) {
        std::size_t pos = range.find(name);
        while (pos != std::string::npos && !token_at(range, pos, name)) {
          pos = range.find(name, pos + 1);
        }
        if (pos != std::string::npos) {
          emit(findings, file, l + 1, "determinism", "unordered-iteration",
               "iterating unordered container '" + name +
                   "' — order is implementation-defined and would leak into "
                   "any reduce; iterate sorted keys instead");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: concurrency
// ---------------------------------------------------------------------------

void rule_concurrency(const SourceFile& file, std::vector<Finding>* findings) {
  // The pool's per-task capture sites are the one place catch (...) is
  // the design (exceptions become exception_ptr slots, every index still
  // runs). Everywhere else it needs an explicit allow.
  const bool capture_site = file.rel_path == "src/runtime/thread_pool.cpp";

  // The only src/ files that may touch raw threading primitives: the
  // pool itself and the annotated MutexLock wrapper it hands out for
  // condition_variable interop.
  const bool thread_site = file.rel_path == "src/runtime/thread_pool.cpp" ||
                           file.rel_path == "src/runtime/thread_pool.hpp" ||
                           file.rel_path == "src/runtime/annotations.hpp";

  static const std::regex kCatchAll(R"(\bcatch\s*\(\s*\.\.\.\s*\))");
  static const std::regex kStaticDecl(R"(^\s*(inline\s+)?static\s+\w)");

  for (std::size_t l = 0; l < file.code.size(); ++l) {
    const std::string& code = file.code[l];

    if (!capture_site && std::regex_search(code, kCatchAll)) {
      emit(findings, file, l + 1, "concurrency", "catch-all",
           "catch (...) swallows every failure mode; outside the "
           "ThreadPool capture sites, catch concrete exception types (or "
           "pfm-lint: allow(concurrency) with a reason)");
    }

    if (!file.in_src()) continue;  // the checks below are src/-only

    // Raw threading primitives outside the pool. Persistent-worker
    // state (generation counters, parked workers, shard cursors) only
    // stays coherent behind the pool's annotated handshake; a stray
    // std::thread, std::async or condition_variable bypasses all of
    // it — async in particular spawns an unpooled thread whose join
    // point (the future's destructor) is invisible to the epoch
    // barrier.
    if (!thread_site) {
      for (const char* name : {"std::thread", "std::jthread", "std::async",
                               "condition_variable"}) {
        for (std::size_t pos = code.find(name); pos != std::string::npos;
             pos = code.find(name, pos + 1)) {
          if (!token_at(code, pos, name)) continue;
          emit(findings, file, l + 1, "concurrency", "raw-thread",
               std::string(name) +
                   " outside src/runtime/thread_pool — spawn threads only "
                   "through runtime::ThreadPool; persistent-worker state "
                   "must live behind its annotated handshake");
        }
      }
    }

    for (std::size_t pos = code.find("volatile"); pos != std::string::npos;
         pos = code.find("volatile", pos + 1)) {
      if (!token_at(code, pos, "volatile")) continue;
      emit(findings, file, l + 1, "concurrency", "volatile",
           "volatile is not a synchronization primitive; use std::atomic "
           "or a mutex");
    }

    // Mutable static-duration state: `static T x...` that is not const,
    // constexpr, thread_local or atomic, and is a variable (no parameter
    // list before the declarator ends → not a function/method
    // declaration). Shared counters belong in per-task slots, atomics,
    // or behind a PFM_GUARDED_BY-annotated lock.
    if (std::regex_search(code, kStaticDecl)) {
      const bool immutable =
          code.find("const") != std::string::npos ||       // const/constexpr/
          code.find("constinit") != std::string::npos;     //   constexpr'd init
      const bool thread_local_var =
          code.find("thread_local") != std::string::npos;
      const bool atomic = code.find("atomic") != std::string::npos;
      const std::size_t stop = code.find_first_of(";={");
      const std::size_t paren = code.find('(');
      // No terminator on this line → the declaration continues; a purely
      // lexical pass cannot judge it, so stay quiet (src/ keeps static
      // declarators on one line).
      const bool undecidable = stop == std::string::npos;
      const bool function_decl = paren != std::string::npos && paren < stop;
      if (!immutable && !thread_local_var && !atomic && !undecidable &&
          !function_decl) {
        emit(findings, file, l + 1, "concurrency", "mutable-static",
             "mutable static state is shared across every thread and "
             "fleet node; use per-task slots, std::atomic, or a "
             "PFM_GUARDED_BY-annotated lock");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

using RuleFn = void (*)(const SourceFile&, std::vector<Finding>*);

const std::vector<std::pair<std::string, RuleFn>>& rule_table() {
  static const std::vector<std::pair<std::string, RuleFn>> kRules = {
      {"layering", &rule_layering},
      {"determinism", &rule_determinism},
      {"concurrency", &rule_concurrency},
  };
  return kRules;
}

bool has_source_extension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& [name, fn] : rule_table()) names.push_back(name);
    return names;
  }();
  return kNames;
}

std::vector<Finding> run(const Options& options) {
  namespace fs = std::filesystem;

  std::vector<RuleFn> selected;
  const auto& table = rule_table();
  if (options.rules.empty()) {
    for (const auto& [name, fn] : table) selected.push_back(fn);
  } else {
    for (const auto& wanted : options.rules) {
      const auto it =
          std::find_if(table.begin(), table.end(),
                       [&](const auto& entry) { return entry.first == wanted; });
      if (it == table.end()) {
        throw std::runtime_error("pfm-lint: unknown rule '" + wanted + "'");
      }
      selected.push_back(it->second);
    }
  }

  if (!fs::is_directory(options.root)) {
    throw std::runtime_error("pfm-lint: root is not a directory: " +
                             options.root.string());
  }

  std::vector<Finding> findings;
  for (const char* subtree : {"src", "tests"}) {
    const fs::path base = options.root / subtree;
    if (!fs::is_directory(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      const fs::path& path = it->path();
      if (it->is_directory()) {
        const std::string name = path.filename().string();
        if (std::find(options.exclude_dirs.begin(), options.exclude_dirs.end(),
                      name) != options.exclude_dirs.end()) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (!it->is_regular_file() || !has_source_extension(path)) continue;
      const std::string rel =
          fs::relative(path, options.root).generic_string();
      const SourceFile source = load_source(path, rel);
      for (RuleFn rule : selected) rule(source, &findings);
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  return findings;
}

std::string format(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "/" + finding.check + "] " + finding.message;
}

}  // namespace pfm::lint
