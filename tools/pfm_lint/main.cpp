// pfm-lint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error — so
// CI and the pre-merge gate can distinguish "violations" from "broken
// invocation".

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

void usage(std::FILE* out) {
  std::fputs(
      "usage: pfm-lint [--root DIR] [--rule NAME]... [--list-rules]\n"
      "\n"
      "Walks DIR/src and DIR/tests (default DIR: .) and enforces the\n"
      "project invariants as suppressible diagnostics:\n"
      "\n"
      "  layering      module dependency policy (core is telecom- and\n"
      "                runtime-free, numerics is a leaf, injection wraps\n"
      "                public contracts only)\n"
      "  determinism   no rand()/random_device/system_clock, no\n"
      "                address-keyed containers, no unordered iteration\n"
      "                in src/\n"
      "  concurrency   no mutable statics, no volatile-as-sync, no\n"
      "                catch (...) outside ThreadPool capture sites\n"
      "\n"
      "Suppress a finding in place with `// pfm-lint: allow(<rule>)` on\n"
      "(or immediately above) the offending line; `allow-file(<rule>)`\n"
      "disables a rule for a whole file. See DESIGN.md, \"Correctness\n"
      "tooling\".\n",
      out);
}

}  // namespace

int main(int argc, char** argv) {
  pfm::lint::Options options;
  options.root = ".";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& name : pfm::lint::known_rules()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--root" || arg == "--rule") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pfm-lint: %s needs a value\n\n", arg.c_str());
        usage(stderr);
        return 2;
      }
      if (arg == "--root") {
        options.root = argv[++i];
      } else {
        options.rules.emplace_back(argv[++i]);
      }
      continue;
    }
    std::fprintf(stderr, "pfm-lint: unknown argument '%s'\n\n", arg.c_str());
    usage(stderr);
    return 2;
  }

  try {
    const auto findings = pfm::lint::run(options);
    for (const auto& finding : findings) {
      std::printf("%s\n", pfm::lint::format(finding).c_str());
    }
    if (!findings.empty()) {
      std::printf("pfm-lint: %zu finding%s\n", findings.size(),
                  findings.size() == 1 ? "" : "s");
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
