// pfm-analyze CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error or
// runtime budget exceeded — so CI and the pre-merge gate can distinguish
// "violations" from "broken invocation".

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "lint.hpp"
#include "sarif.hpp"

namespace {

void usage(std::FILE* out) {
  std::fputs(
      "usage: pfm-analyze [--root DIR] [--rule NAME]... [--format text|sarif]\n"
      "                   [--verbose] [--budget-ms N] [--jobs N]\n"
      "                   [--list-rules]\n"
      "\n"
      "Walks DIR/src and DIR/tests (default DIR: .) and enforces the\n"
      "project invariants as suppressible diagnostics:\n"
      "\n"
      "  layering        module dependency policy (core is telecom- and\n"
      "                  runtime-free, numerics is a leaf, injection wraps\n"
      "                  public contracts only)\n"
      "  determinism     no rand()/random_device/system_clock, no\n"
      "                  address-keyed containers, no unordered iteration\n"
      "                  in src/\n"
      "  concurrency     no mutable statics, no volatile-as-sync, no\n"
      "                  catch (...) outside ThreadPool capture sites\n"
      "  hotpath         functions reachable from // pfm-hot entry points\n"
      "                  must not allocate, throw, lock or do stream I/O\n"
      "                  (// pfm-cold bounds the closure)\n"
      "  walltaint       wall-clock-derived values must not reach\n"
      "                  sim-time metric instruments or trace emission\n"
      "  lockdiscipline  PFM_GUARDED_BY fields only touched inside a\n"
      "                  lock scope holding their capability; no\n"
      "                  double-acquisition\n"
      "\n"
      "  --format sarif  emit SARIF 2.1.0 on stdout (GitHub code\n"
      "                  scanning); text is the default\n"
      "  --verbose       print scan statistics (files, functions, call\n"
      "                  edges, phase timings) to stderr\n"
      "  --budget-ms N   exit 2 when the scan takes longer than N ms\n"
      "                  (the CI runtime-budget gate)\n"
      "  --jobs N        worker threads (default: hardware concurrency)\n"
      "\n"
      "Suppress a finding in place with `// pfm-lint: allow(<rule>)` on\n"
      "(or immediately above) the offending line; `allow-file(<rule>)`\n"
      "disables a rule for a whole file. Annotate hot entry points with\n"
      "`// pfm-hot` and closure-bounding slow paths with `// pfm-cold`.\n"
      "See DESIGN.md, \"Correctness tooling\".\n",
      out);
}

}  // namespace

int main(int argc, char** argv) {
  pfm::lint::Options options;
  options.root = ".";
  bool sarif = false;
  bool verbose = false;
  long long budget_ms = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& name : pfm::lint::known_rules()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--verbose") {
      verbose = true;
      continue;
    }
    if (arg == "--root" || arg == "--rule" || arg == "--format" ||
        arg == "--budget-ms" || arg == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pfm-analyze: %s needs a value\n\n", arg.c_str());
        usage(stderr);
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--root") {
        options.root = value;
      } else if (arg == "--rule") {
        options.rules.push_back(value);
      } else if (arg == "--format") {
        if (value == "sarif") {
          sarif = true;
        } else if (value == "text") {
          sarif = false;
        } else {
          std::fprintf(stderr, "pfm-analyze: unknown format '%s'\n\n",
                       value.c_str());
          usage(stderr);
          return 2;
        }
      } else if (arg == "--budget-ms") {
        budget_ms = std::atoll(value.c_str());
      } else {
        options.jobs = static_cast<std::size_t>(std::atoll(value.c_str()));
      }
      continue;
    }
    // `--format=sarif` style.
    if (arg.rfind("--format=", 0) == 0) {
      const std::string value = arg.substr(9);
      if (value == "sarif") {
        sarif = true;
        continue;
      }
      if (value == "text") {
        sarif = false;
        continue;
      }
      std::fprintf(stderr, "pfm-analyze: unknown format '%s'\n\n",
                   value.c_str());
      usage(stderr);
      return 2;
    }
    std::fprintf(stderr, "pfm-analyze: unknown argument '%s'\n\n", arg.c_str());
    usage(stderr);
    return 2;
  }

  try {
    const auto t0 = std::chrono::steady_clock::now();
    pfm::lint::RunStats stats;
    const auto findings = pfm::lint::run(options, &stats);
    const auto elapsed_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    if (sarif) {
      std::fputs(pfm::lint::to_sarif(findings).c_str(), stdout);
    } else {
      for (const auto& finding : findings) {
        std::printf("%s\n", pfm::lint::format(finding).c_str());
      }
      if (!findings.empty()) {
        std::printf("pfm-analyze: %zu finding%s\n", findings.size(),
                    findings.size() == 1 ? "" : "s");
      }
    }
    if (verbose) {
      std::fprintf(stderr,
                   "pfm-analyze: %zu files, %zu functions, %zu call edges "
                   "(%zu jobs)\n"
                   "pfm-analyze: scan %.1f ms, graph %.1f ms, total %.1f ms\n",
                   stats.files, stats.functions, stats.call_edges, stats.jobs,
                   stats.load_ms, stats.graph_ms, stats.total_ms);
    }
    if (budget_ms >= 0 &&
        elapsed_ns > budget_ms * 1000000LL) {
      std::fprintf(stderr,
                   "pfm-analyze: runtime budget exceeded: %.1f ms > %lld ms\n",
                   static_cast<double>(elapsed_ns) / 1e6, budget_ms);
      return 2;
    }
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
