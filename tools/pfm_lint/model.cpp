#include "model.hpp"

#include <algorithm>
#include <cstring>
#include <regex>

namespace pfm::lint {

namespace {

// ---------------------------------------------------------------------------
// Header classification helpers
// ---------------------------------------------------------------------------

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "noexcept", "throw", "new",
      "delete", "co_return", "co_await", "co_yield", "static_assert"};
  return kWords;
}

// Scans `text` and records, per position, the '(' nesting depth and an
// angle-bracket depth robust enough for declaration headers: `<<`, `>>`
// at depth 0, `->`, and comparison-with-'=' forms are not treated as
// angle brackets.
struct DepthScan {
  std::vector<int> paren;  // depth BEFORE consuming text[i]
  std::vector<int> angle;
};

DepthScan scan_depths(const std::string& text) {
  DepthScan out;
  out.paren.resize(text.size(), 0);
  out.angle.resize(text.size(), 0);
  int paren = 0;
  int angle = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    out.paren[i] = paren;
    out.angle[i] = angle;
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    const char prev = i > 0 ? text[i - 1] : '\0';
    if (c == '(') ++paren;
    else if (c == ')') paren = paren > 0 ? paren - 1 : 0;
    else if (c == '<') {
      if (next == '<' || next == '=' || prev == '<') continue;
      ++angle;
    } else if (c == '>') {
      if (prev == '-' || next == '=') continue;  // "->", ">="
      if (angle > 0) --angle;
    }
  }
  return out;
}

// Finds a whole-word token at paren depth 0 and angle depth 0.
bool header_has_token(const std::string& header, const DepthScan& d,
                      const char* token) {
  for (std::size_t pos = header.find(token); pos != std::string::npos;
       pos = header.find(token, pos + 1)) {
    if (!token_at(header, pos, token)) continue;
    if (d.paren[pos] == 0 && d.angle[pos] == 0) return true;
  }
  return false;
}

std::string last_nonspace_suffix(const std::string& s) {
  const auto last = s.find_last_not_of(" \t");
  if (last == std::string::npos) return "";
  return s.substr(last, 1);
}

// Reads the identifier ending at (exclusive) position `end`; returns
// empty when none. `begin_out` receives its start.
std::string ident_ending_at(const std::string& s, std::size_t end,
                            std::size_t* begin_out = nullptr) {
  std::size_t begin = end;
  while (begin > 0 && is_ident(s[begin - 1])) --begin;
  if (begin_out) *begin_out = begin;
  if (begin == end) return "";
  return s.substr(begin, end - begin);
}

// Skips spaces backwards from (exclusive) `pos`.
std::size_t skip_spaces_back(const std::string& s, std::size_t pos) {
  while (pos > 0 && (s[pos - 1] == ' ' || s[pos - 1] == '\t')) --pos;
  return pos;
}

// Extracts the declarator name of a function-shaped header: the
// identifier immediately before the first '(' at paren/angle depth 0,
// plus the last `Class::` qualifier component if present. Returns false
// when the header is not function-shaped.
bool parse_function_name(const std::string& header, const DepthScan& d,
                         std::string* name, std::string* qualifier) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] != '(' || d.paren[i] != 0 || d.angle[i] != 0) continue;
    std::size_t end = skip_spaces_back(header, i);
    std::size_t begin = 0;
    std::string id = ident_ending_at(header, end, &begin);
    if (id.empty()) return false;
    if (control_keywords().count(id)) return false;
    *name = id;
    qualifier->clear();
    // Walk back over a `A::B::name` chain; the last component before
    // the name is the class (or namespace) qualifier.
    std::size_t pos = begin;
    if (pos >= 2 && header.compare(pos - 2, 2, "::") == 0) {
      std::string q = ident_ending_at(header, pos - 2);
      if (q.empty() && pos >= 3 && header[pos - 3] == '~') {
        // "~Class::..." cannot occur; handled below via name.
      }
      *qualifier = q;
    }
    // Destructor: `~Class()` — keep the '~' as part of the name so
    // ctor/dtor detection can see it.
    if (begin > 0 && header[begin - 1] == '~') *name = "~" + id;
    return true;
  }
  return false;
}

// The scope kinds the parser distinguishes. Anything brace-shaped that
// is not a namespace, class or function body (initializer lists,
// control-flow blocks, enums, lambdas) is a Block: it only needs to
// balance braces.
enum class ScopeKind { Namespace, Class, Function, Block };

struct Scope {
  ScopeKind kind = ScopeKind::Block;
  std::string name;            // class name for Class scopes
  std::size_t function = static_cast<std::size_t>(-1);  // FunctionDef index
};

// Attributes found on a declaration (PFM_* macros live on the hpp
// declaration while the body lives in the cpp); merged into the
// definition by (class, name).
struct DeclAttrs {
  bool hot = false;
  bool cold = false;
  bool lock_exempt = false;
  std::set<std::string> required_caps;
};

std::set<std::string> parse_macro_args(const std::string& header,
                                       const char* macro) {
  std::set<std::string> out;
  for (std::size_t pos = header.find(macro); pos != std::string::npos;
       pos = header.find(macro, pos + 1)) {
    if (!token_at(header, pos, macro)) continue;
    const std::size_t open = header.find('(', pos);
    if (open == std::string::npos) continue;
    const std::size_t close = header.find(')', open);
    if (close == std::string::npos) continue;
    std::string args = header.substr(open + 1, close - open - 1);
    std::size_t start = 0;
    while (start <= args.size()) {
      std::size_t comma = args.find(',', start);
      std::string arg = args.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      const auto first = arg.find_first_not_of(" \t");
      if (first != std::string::npos) {
        const auto last = arg.find_last_not_of(" \t");
        out.insert(arg.substr(first, last - first + 1));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-file parse
// ---------------------------------------------------------------------------

struct FileParse {
  std::vector<FunctionDef> functions;
  std::map<std::string, std::map<std::string, std::string>> guarded;
  std::map<std::pair<std::string, std::string>, DeclAttrs> decl_attrs;
};

class Parser {
 public:
  explicit Parser(const std::shared_ptr<const SourceFile>& file)
      : file_(file) {}

  FileParse parse() {
    const auto& code = file_->code;
    bool in_preprocessor = false;
    for (std::size_t l = 0; l < code.size(); ++l) {
      const std::string& line = code[l];
      // Preprocessor lines never contribute to declaration headers (an
      // #include <...> would otherwise leak an unbalanced '<' into the
      // next header). Backslash continuations extend the directive.
      if (!in_preprocessor) {
        const auto first = line.find_first_not_of(" \t");
        if (first != std::string::npos && line[first] == '#') {
          in_preprocessor = true;
        }
      }
      if (in_preprocessor) {
        const std::string& raw = file_->raw[l];
        const auto last = raw.find_last_not_of(" \t\r");
        if (last == std::string::npos || raw[last] != '\\') {
          in_preprocessor = false;
        }
        continue;
      }
      // Headers spanning physical lines need a separator so identifiers
      // do not fuse across the break.
      if (!header_.empty()) header_ += ' ';
      parse_line(l + 1, line);
    }
    // Close any function left open by unbalanced input.
    for (auto& fn : out_.functions) {
      if (fn.body_close_line == 0) {
        fn.body_close_line = code.size();
        fn.body_close_col = code.empty() ? 0 : code.back().size();
      }
    }
    return std::move(out_);
  }

 private:
  void parse_line(std::size_t line_no, const std::string& line) {
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '{') {
        open_brace(line_no, i);
      } else if (c == '}') {
        close_brace(line_no, i);
      } else if (c == ';' && !inside_function()) {
        finish_declaration(line_no);
      } else {
        if (inside_function()) continue;  // bodies are scanned by rules
        if (header_.empty()) {
          if (c == ' ' || c == '\t' || c == '\r') continue;
          header_line_ = line_no;
        }
        header_ += c;
      }
    }
  }

  bool inside_function() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == ScopeKind::Function) return true;
      if (it->kind == ScopeKind::Namespace || it->kind == ScopeKind::Class) {
        return false;
      }
    }
    return false;
  }

  std::string enclosing_class() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == ScopeKind::Class) return it->name;
      if (it->kind == ScopeKind::Namespace) return "";
    }
    return "";
  }

  void open_brace(std::size_t line_no, std::size_t col) {
    Scope scope;
    if (inside_function()) {
      scope.kind = ScopeKind::Block;
      stack_.push_back(scope);
      return;
    }
    const std::string header = header_;
    const std::size_t header_line = header_line_ ? header_line_ : line_no;
    header_.clear();
    header_line_ = 0;

    const DepthScan d = scan_depths(header);
    if (header_has_token(header, d, "namespace")) {
      scope.kind = ScopeKind::Namespace;
      stack_.push_back(scope);
      return;
    }
    if (header_has_token(header, d, "enum")) {
      scope.kind = ScopeKind::Block;
      stack_.push_back(scope);
      return;
    }
    // `alignas(...)` parens in a class head must not make it look
    // function-shaped.
    std::string head_no_alignas = header;
    for (std::size_t pos = head_no_alignas.find("alignas");
         pos != std::string::npos;
         pos = head_no_alignas.find("alignas", pos + 1)) {
      if (!token_at(head_no_alignas, pos, "alignas")) continue;
      const std::size_t open = head_no_alignas.find('(', pos);
      if (open == std::string::npos) break;
      const std::size_t close = head_no_alignas.find(')', open);
      if (close == std::string::npos) break;
      head_no_alignas.erase(pos, close - pos + 1);
      pos = 0;
    }
    if ((header_has_token(header, d, "class") ||
         header_has_token(header, d, "struct") ||
         header_has_token(header, d, "union")) &&
        head_no_alignas.find('(') == std::string::npos) {
      scope.kind = ScopeKind::Class;
      scope.name = class_name_of(header, d);
      stack_.push_back(scope);
      return;
    }
    // `= { ... }` initializers (but operator= definitions are functions).
    const std::string tail = last_nonspace_suffix(header);
    const bool has_operator = header.find("operator") != std::string::npos;
    if (!has_operator && !header.empty()) {
      for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] != '=' || d.paren[i] != 0 || d.angle[i] != 0) continue;
        const char prev = i > 0 ? header[i - 1] : '\0';
        const char next = i + 1 < header.size() ? header[i + 1] : '\0';
        if (prev == '=' || prev == '!' || prev == '<' || prev == '>' ||
            next == '=') {
          continue;
        }
        scope.kind = ScopeKind::Block;
        stack_.push_back(scope);
        return;
      }
    }
    (void)tail;

    std::string name;
    std::string qualifier;
    if (!parse_function_name(header, d, &name, &qualifier)) {
      scope.kind = ScopeKind::Block;
      stack_.push_back(scope);
      return;
    }

    FunctionDef def;
    def.file = file_.get();
    def.name = name;
    def.class_name = !qualifier.empty() ? qualifier : enclosing_class();
    def.display =
        def.class_name.empty() ? def.name : def.class_name + "::" + def.name;
    def.header_line = header_line;
    def.body_open_line = line_no;
    def.body_open_col = col + 1;
    const std::string bare =
        def.name.size() > 1 && def.name[0] == '~' ? def.name.substr(1)
                                                  : def.name;
    def.is_ctor_dtor = !def.class_name.empty() && bare == def.class_name;
    def.hot = file_->marked(header_line - 1, line_no, SourceFile::kHot);
    def.cold = file_->marked(header_line - 1, line_no, SourceFile::kCold);
    def.lock_exempt =
        header.find("PFM_NO_THREAD_SAFETY_ANALYSIS") != std::string::npos ||
        header.find("PFM_ACQUIRE") != std::string::npos ||
        header.find("PFM_RELEASE") != std::string::npos;
    def.required_caps = parse_macro_args(header, "PFM_REQUIRES");

    scope.kind = ScopeKind::Function;
    scope.function = out_.functions.size();
    out_.functions.push_back(std::move(def));
    stack_.push_back(scope);
  }

  void close_brace(std::size_t line_no, std::size_t col) {
    header_.clear();
    header_line_ = 0;
    if (stack_.empty()) return;
    const Scope scope = stack_.back();
    stack_.pop_back();
    if (scope.kind == ScopeKind::Function) {
      FunctionDef& def = out_.functions[scope.function];
      def.body_close_line = line_no;
      def.body_close_col = col;
    }
  }

  // A ';' at namespace/class scope ends the pending declaration: the
  // place PFM_GUARDED_BY fields and annotated method declarations are
  // recorded.
  void finish_declaration(std::size_t line_no) {
    const std::string header = header_;
    const std::size_t header_line = header_line_ ? header_line_ : line_no;
    header_.clear();
    header_line_ = 0;
    if (header.empty()) return;

    const std::string cls = enclosing_class();

    // Guarded fields: `Type name_ PFM_GUARDED_BY(cap) [= init]`.
    if (!cls.empty()) {
      for (std::size_t pos = header.find("PFM_GUARDED_BY");
           pos != std::string::npos;
           pos = header.find("PFM_GUARDED_BY", pos + 1)) {
        if (!token_at(header, pos, "PFM_GUARDED_BY")) continue;
        const std::size_t name_end = skip_spaces_back(header, pos);
        const std::string field = ident_ending_at(header, name_end);
        const auto caps = parse_macro_args(
            header.substr(pos), "PFM_GUARDED_BY");
        if (!field.empty() && !caps.empty()) {
          out_.guarded[cls][field] = *caps.begin();
        }
      }
    }

    // Annotated declarations (annotations on the hpp prototype apply to
    // the out-of-line definition).
    const bool exempt =
        header.find("PFM_NO_THREAD_SAFETY_ANALYSIS") != std::string::npos ||
        header.find("PFM_ACQUIRE") != std::string::npos ||
        header.find("PFM_RELEASE") != std::string::npos;
    auto caps = parse_macro_args(header, "PFM_REQUIRES");
    const bool hot = file_->marked(header_line - 1, line_no, SourceFile::kHot);
    const bool cold =
        file_->marked(header_line - 1, line_no, SourceFile::kCold);
    if (!exempt && caps.empty() && !hot && !cold) return;

    const DepthScan d = scan_depths(header);
    std::string name;
    std::string qualifier;
    if (!parse_function_name(header, d, &name, &qualifier)) return;
    const std::string owner = !qualifier.empty() ? qualifier : cls;
    DeclAttrs& attrs = out_.decl_attrs[{owner, name}];
    attrs.hot = attrs.hot || hot;
    attrs.cold = attrs.cold || cold;
    attrs.lock_exempt = attrs.lock_exempt || exempt;
    attrs.required_caps.insert(caps.begin(), caps.end());
  }

  static std::string class_name_of(const std::string& header,
                                   const DepthScan& d) {
    // The identifier after the last top-level `class`/`struct` token,
    // skipping attributes and the base-clause.
    std::size_t kw = std::string::npos;
    for (const char* token : {"class", "struct", "union"}) {
      for (std::size_t pos = header.find(token); pos != std::string::npos;
           pos = header.find(token, pos + 1)) {
        if (!token_at(header, pos, token)) continue;
        if (d.paren[pos] != 0 || d.angle[pos] != 0) continue;
        if (kw == std::string::npos || pos > kw) {
          kw = pos + std::strlen(token);
        }
      }
    }
    if (kw == std::string::npos) return "";
    std::size_t i = kw;
    while (i < header.size() && (header[i] == ' ' || header[i] == '\t')) ++i;
    // Skip alignas(...)/[[...]] attribute-ish tokens conservatively.
    std::size_t end = i;
    while (end < header.size() && is_ident(header[end])) ++end;
    std::string name = header.substr(i, end - i);
    if (name == "alignas" || name == "final") return "";
    return name;
  }

  std::shared_ptr<const SourceFile> file_;
  std::vector<Scope> stack_;
  std::string header_;
  std::size_t header_line_ = 0;
  FileParse out_;
};

// ---------------------------------------------------------------------------
// Call extraction
// ---------------------------------------------------------------------------

// Collects receiver-less call sites in one body segment: identifier
// (optionally `A::B::`-qualified or `this->`-prefixed) followed by '('.
struct CallSite {
  std::string name;
  std::string qualifier;  // last component before ::, "" when none
  bool std_qualified = false;
};

void collect_calls(const std::string& seg, std::vector<CallSite>* out) {
  for (std::size_t i = 0; i < seg.size(); ++i) {
    if (!is_ident(seg[i])) continue;
    std::size_t end = i;
    while (end < seg.size() && is_ident(seg[end])) ++end;
    const std::string id = seg.substr(i, end - i);
    std::size_t after = end;
    while (after < seg.size() && seg[after] == ' ') ++after;
    const std::size_t next_i = end;  // resume after this identifier
    if (after < seg.size() && seg[after] == '(' &&
        !control_keywords().count(id)) {
      // Walk the qualifier chain backwards.
      std::size_t begin = i;
      std::string qualifier;
      bool std_qualified = false;
      bool receiver = false;
      std::size_t pos = skip_spaces_back(seg, begin);
      bool first_component = true;
      while (true) {
        if (pos >= 2 && seg.compare(pos - 2, 2, "::") == 0) {
          std::size_t qbegin = 0;
          const std::string q = ident_ending_at(seg, pos - 2, &qbegin);
          if (q.empty()) break;
          if (first_component) qualifier = q;
          first_component = false;
          if (q == "std") std_qualified = true;
          pos = skip_spaces_back(seg, qbegin);
          continue;
        }
        if (pos >= 2 && seg.compare(pos - 2, 2, "->") == 0) {
          const std::string recv = ident_ending_at(seg, pos - 2);
          receiver = recv != "this";
        } else if (pos >= 1 && seg[pos - 1] == '.') {
          receiver = true;
        }
        break;
      }
      if (!receiver && !std_qualified) {
        out->push_back({id, qualifier, std_qualified});
      }
    }
    i = next_i;
  }
}

}  // namespace

void for_each_body_line(
    const FunctionDef& def,
    const std::function<void(std::size_t, const std::string&)>& fn) {
  const auto& code = def.file->code;
  if (def.body_open_line == 0 || def.body_open_line > code.size()) return;
  const std::size_t last = std::min(def.body_close_line, code.size());
  for (std::size_t line = def.body_open_line; line <= last; ++line) {
    std::string seg = code[line - 1];
    if (line == def.body_close_line && def.body_close_col <= seg.size()) {
      seg.resize(def.body_close_col);
    }
    if (line == def.body_open_line) {
      const std::size_t from = std::min(def.body_open_col, seg.size());
      seg = std::string(from, ' ') + seg.substr(from);
    }
    fn(line, seg);
  }
}

ProjectModel build_model(std::vector<std::shared_ptr<const SourceFile>> files) {
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) {
              return a->rel_path < b->rel_path;
            });

  ProjectModel model;
  model.files = std::move(files);

  std::map<std::pair<std::string, std::string>, DeclAttrs> decl_attrs;
  std::set<std::string> known_classes;

  for (const auto& file : model.files) {
    FileParse parsed = Parser(file).parse();
    for (auto& fn : parsed.functions) {
      model.functions.push_back(std::move(fn));
    }
    for (auto& [cls, fields] : parsed.guarded) {
      known_classes.insert(cls);
      for (auto& [field, cap] : fields) model.guarded[cls][field] = cap;
    }
    for (auto& [key, attrs] : parsed.decl_attrs) {
      DeclAttrs& merged = decl_attrs[key];
      merged.hot = merged.hot || attrs.hot;
      merged.cold = merged.cold || attrs.cold;
      merged.lock_exempt = merged.lock_exempt || attrs.lock_exempt;
      merged.required_caps.insert(attrs.required_caps.begin(),
                                  attrs.required_caps.end());
    }

    // Wall-clock type aliases, for the taint rule.
    static const std::regex kAlias(
        R"(using\s+([A-Za-z_]\w*)\s*=\s*std::chrono::(steady_clock|high_resolution_clock))");
    for (const auto& line : file->code) {
      std::smatch m;
      std::string rest = line;
      while (std::regex_search(rest, m, kAlias)) {
        model.wall_aliases[file->rel_path].insert(m[1].str());
        rest = m.suffix().str();
      }
    }

    // Metric-instrument registrations: `<lhs> = &<registry expr>.counter(
    // ...)` (or ->gauge/->histogram), possibly spanning lines. The clock
    // defaults mirror obs/metrics.hpp: counters and gauges register
    // against sim time, histograms against wall time, and an explicit
    // Clock::kSim / Clock::kWall argument overrides either.
    static const std::regex kRegistration(
        R"(([A-Za-z_]\w*)\s*=\s*&?\s*[A-Za-z_][\w.()\->]*(?:\.|->)\s*(counter|gauge|histogram)\s*\()");
    for (std::size_t l = 0; l < file->code.size(); ++l) {
      std::smatch m;
      if (!std::regex_search(file->code[l], m, kRegistration)) continue;
      std::string window = file->code[l];
      for (std::size_t j = 1; j <= 4 && l + j < file->code.size(); ++j) {
        if (window.find(';') != std::string::npos) break;
        window += " " + file->code[l + j];
      }
      InstrumentClock info;
      info.line = l + 1;
      info.file = file->rel_path;
      const std::string kind = m[2].str();
      if (window.find("kSim") != std::string::npos) {
        info.sim = true;
      } else if (window.find("kWall") != std::string::npos) {
        info.sim = false;
      } else {
        info.sim = kind != "histogram";
      }
      // "sim wins" on duplicate names: if any registration of this name
      // is sim-clocked, treat sinks into it as sim-time exports.
      auto it = model.instruments.find(m[1].str());
      if (it == model.instruments.end() || info.sim) {
        model.instruments[m[1].str()] = info;
      }
    }
  }

  // Merge declaration attributes and index by name.
  for (std::size_t i = 0; i < model.functions.size(); ++i) {
    FunctionDef& fn = model.functions[i];
    const auto it = decl_attrs.find({fn.class_name, fn.name});
    if (it != decl_attrs.end()) {
      fn.hot = fn.hot || it->second.hot;
      fn.cold = fn.cold || it->second.cold;
      fn.lock_exempt = fn.lock_exempt || it->second.lock_exempt;
      fn.required_caps.insert(it->second.required_caps.begin(),
                              it->second.required_caps.end());
    }
    model.by_name[fn.name].push_back(i);
  }

  // Call edges.
  for (std::size_t i = 0; i < model.functions.size(); ++i) {
    FunctionDef& fn = model.functions[i];
    std::vector<CallSite> sites;
    for_each_body_line(fn, [&](std::size_t, const std::string& seg) {
      collect_calls(seg, &sites);
    });
    std::set<std::size_t> targets;
    for (const auto& site : sites) {
      const auto by = model.by_name.find(site.name);
      if (by == model.by_name.end()) continue;
      if (!site.qualifier.empty()) {
        // `Class::f(...)`: prefer definitions in that class; a
        // qualifier that names no known class is a namespace (or a
        // type alias) — fall back to every definition of the name.
        std::vector<std::size_t> in_class;
        for (std::size_t t : by->second) {
          if (model.functions[t].class_name == site.qualifier) {
            in_class.push_back(t);
          }
        }
        if (!in_class.empty()) {
          targets.insert(in_class.begin(), in_class.end());
          continue;
        }
      }
      // Unqualified (or namespace-qualified) calls cannot land on another
      // class's method without a receiver: candidates are free functions,
      // plus this class's own methods for the unqualified `f(...)` form.
      for (std::size_t t : by->second) {
        const FunctionDef& cand = model.functions[t];
        if (cand.class_name.empty() ||
            (site.qualifier.empty() && !fn.class_name.empty() &&
             cand.class_name == fn.class_name)) {
          targets.insert(t);
        }
      }
    }
    targets.erase(i);  // self-recursion adds nothing to a closure
    fn.calls.assign(targets.begin(), targets.end());
  }

  (void)known_classes;
  return model;
}

}  // namespace pfm::lint
