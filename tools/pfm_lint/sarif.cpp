#include "sarif.hpp"

#include <cstdio>
#include <map>
#include <sstream>

namespace pfm::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  // Rule metadata: one entry per distinct "family/check" id, in sorted
  // order; results reference rules by index.
  std::map<std::string, std::size_t> rule_index;
  for (const auto& f : findings) {
    rule_index.emplace(f.rule + "/" + f.check, 0);
  }
  std::size_t next = 0;
  for (auto& [id, index] : rule_index) index = next++;

  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"pfm-analyze\",\n"
      << "          \"rules\": [";
  bool first = true;
  for (const auto& [id, index] : rule_index) {
    (void)index;
    out << (first ? "\n" : ",\n")
        << "            {\"id\": \"" << json_escape(id)
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(id)
        << "\"}}";
    first = false;
  }
  out << (rule_index.empty() ? "]\n" : "\n          ]\n")
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  first = true;
  for (const auto& f : findings) {
    const std::string id = f.rule + "/" + f.check;
    out << (first ? "\n" : ",\n")
        << "        {\n"
        << "          \"ruleId\": \"" << json_escape(id) << "\",\n"
        << "          \"ruleIndex\": " << rule_index[id] << ",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"},\n"
        << "                \"region\": {\"startLine\": " << f.line << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
    first = false;
  }
  out << (findings.empty() ? "]\n" : "\n      ]\n")
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace pfm::lint
