#pragma once

// SARIF 2.1.0 serialization of pfm-analyze findings, the interchange
// format GitHub code scanning ingests (`--format=sarif` in the CLI,
// uploaded by lint.yml). One run, one result per finding, rule ids of
// the form "family/check".

#include <string>
#include <vector>

#include "lint.hpp"

namespace pfm::lint {

/// Serializes findings as a SARIF 2.1.0 document (UTF-8, trailing
/// newline). Deterministic for a given findings vector.
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace pfm::lint
