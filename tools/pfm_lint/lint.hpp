#pragma once

// pfm-lint: the project's own static-analysis pass. It walks src/ and
// tests/, strips comments and string literals, and enforces the three
// invariant families the runtime's guarantees rest on:
//
//   layering     — the module dependency policy (core is telecom- and
//                  runtime-free, numerics is a leaf, injection only wraps
//                  public contracts). The allowed-dependency matrix below
//                  is the single source of truth; tests assert against it.
//   determinism  — no wall-clock or platform randomness in results:
//                  rand()/srand(), std::random_device and
//                  std::chrono::system_clock are banned, containers must
//                  not be keyed by object addresses, and unordered
//                  containers must not be iterated in src/ (iteration
//                  order would leak into reduces). Seeded splitmix64
//                  streams (numerics/rng.hpp) are the only RNG.
//   concurrency  — no mutable static state, no `volatile` as a
//                  synchronization primitive, and no `catch (...)`
//                  outside the ThreadPool's per-task capture sites.
//
// Diagnostics are per-line and suppressible in place:
//
//   do_risky_thing();  // pfm-lint: allow(concurrency)
//
// A directive on a line of its own applies to the next line; an
// `allow-file(<rule>)` directive anywhere in a file disables the rule
// for the whole file. Every suppression is grep-able, so exceptions to
// the invariants stay visible in review.
//
// The pass is deliberately lexical (no LLVM dependency): it trades
// soundness-in-the-limit for a zero-cost gate every PR runs under.
// clang-tidy and -Wthread-safety cover the semantic end of the spectrum
// (see DESIGN.md "Correctness tooling").

#include <filesystem>
#include <string>
#include <vector>

namespace pfm::lint {

/// One diagnostic. `check` refines `rule` (e.g. rule "determinism",
/// check "banned-token"); suppression matches on the rule name.
struct Finding {
  std::string rule;
  std::string check;
  std::string file;  ///< path relative to Options::root, '/'-separated
  std::size_t line = 0;  ///< 1-based
  std::string message;
};

struct Options {
  /// Repository root: the directory containing src/ (and optionally
  /// tests/). Both subtrees are scanned when present.
  std::filesystem::path root;
  /// Rule names to run; empty means all of known_rules().
  std::vector<std::string> rules;
  /// Directory names skipped during the walk. Defaults to the lint's
  /// own test fixtures, which contain violations on purpose.
  std::vector<std::string> exclude_dirs = {"lint_fixtures"};
};

/// The rule names `Options::rules` accepts, in diagnostic order.
const std::vector<std::string>& known_rules();

/// Runs the selected rules over the tree. Findings are sorted by file,
/// then line, then check. Throws std::runtime_error on an unknown rule
/// name or an unreadable root.
std::vector<Finding> run(const Options& options);

/// "src/core/mea.cpp:12: [determinism/banned-token] message" — the
/// format both the CLI and test failure output use.
std::string format(const Finding& finding);

}  // namespace pfm::lint
