#pragma once

// pfm-analyze: the project's own static-analysis pass (formerly
// pfm-lint; the library name and suppression directives are unchanged).
// It walks src/ and tests/, lexes every file into a comment/string-free
// code view, parses function scopes into a per-file symbol table plus an
// intra-project call graph, and enforces six invariant families:
//
// Lexical (per file):
//   layering     — the module dependency policy (core is telecom- and
//                  runtime-free, numerics is a leaf, injection only wraps
//                  public contracts). The allowed-dependency matrix in
//                  lint.cpp is the single source of truth.
//   determinism  — no wall-clock or platform randomness in results:
//                  rand()/srand(), std::random_device and
//                  std::chrono::system_clock are banned, containers must
//                  not be keyed by object addresses, and unordered
//                  containers must not be iterated in src/.
//   concurrency  — no mutable static state, no `volatile` as a
//                  synchronization primitive, and no `catch (...)`
//                  outside the ThreadPool's per-task capture sites.
//
// Graph-aware (whole project, see DESIGN.md §7):
//   hotpath        — functions annotated `// pfm-hot` are closed
//                    transitively over the call graph; every reachable
//                    function is checked for heap allocation, throw,
//                    mutex acquisition and stream I/O. `// pfm-cold`
//                    marks a slow path the closure must not enter.
//   walltaint      — values derived from wall clocks
//                    (std::chrono::steady_clock & aliases) are traced
//                    through assignments and call returns; flowing into
//                    a sim-clocked metric instrument or sim-time trace
//                    emission is a finding.
//   lockdiscipline — PFM_GUARDED_BY fields cross-checked against actual
//                    lock scopes per function: guarded access outside
//                    any lock, and double-acquisition. Mirrors (and
//                    covers GCC builds for) Clang -Wthread-safety.
//
// Diagnostics are per-line and suppressible in place:
//
//   do_risky_thing();  // pfm-lint: allow(concurrency)
//
// A directive on a line of its own applies to the next line; an
// `allow-file(<rule>)` directive anywhere in a file disables the rule
// for the whole file. Every suppression is grep-able, so exceptions to
// the invariants stay visible in review.
//
// The pass is deliberately LLVM-free: it trades soundness-in-the-limit
// for a gate fast enough (< 2 s full-tree, parallel scan + cached code
// views) that every PR runs it. clang-tidy and -Wthread-safety cover
// the semantic end of the spectrum (see DESIGN.md "Correctness
// tooling").

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace pfm::lint {

/// One diagnostic. `check` refines `rule` (e.g. rule "determinism",
/// check "banned-token"); suppression matches on the rule name.
struct Finding {
  std::string rule;
  std::string check;
  std::string file;  ///< path relative to Options::root, '/'-separated
  std::size_t line = 0;  ///< 1-based
  std::string message;
};

struct Options {
  /// Repository root: the directory containing src/ (and optionally
  /// tests/). Both subtrees are scanned when present.
  std::filesystem::path root;
  /// Rule names to run; empty means all of known_rules().
  std::vector<std::string> rules;
  /// Directory names skipped during the walk. Defaults to the lint's
  /// own test fixtures, which contain violations on purpose.
  std::vector<std::string> exclude_dirs = {"lint_fixtures"};
  /// Worker threads for the file scan; 0 means hardware concurrency.
  std::size_t jobs = 0;
};

/// Phase timings and scan counters, filled by run() for --verbose and
/// the CI runtime-budget step.
struct RunStats {
  std::size_t files = 0;
  std::size_t functions = 0;   ///< function definitions parsed (src/)
  std::size_t call_edges = 0;  ///< resolved intra-project call edges
  std::size_t jobs = 0;        ///< worker threads actually used
  double load_ms = 0;          ///< lex + per-file rules (parallel phase)
  double graph_ms = 0;         ///< model build + graph rules
  double total_ms = 0;
};

/// The rule names `Options::rules` accepts, in diagnostic order.
const std::vector<std::string>& known_rules();

/// Runs the selected rules over the tree. Findings are sorted by file,
/// then line, then check. Throws std::runtime_error on an unknown rule
/// name or an unreadable root.
std::vector<Finding> run(const Options& options);

/// As above, additionally reporting scan statistics.
std::vector<Finding> run(const Options& options, RunStats* stats);

/// "src/core/mea.cpp:12: [determinism/banned-token] message" — the
/// format both the CLI and test failure output use.
std::string format(const Finding& finding);

}  // namespace pfm::lint
