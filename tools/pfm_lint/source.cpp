#include "source.hpp"

#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace pfm::lint {

namespace {

// Parses "pfm-lint: allow(rule, rule)" / "pfm-lint: allow-file(rule)"
// out of one comment's text.
void parse_directive(const std::string& comment,
                     std::set<std::string>* line_rules,
                     std::set<std::string>* file_rules) {
  static const std::regex kDirective(
      R"(pfm-lint:\s*(allow|allow-file)\s*\(([^)]*)\))");
  auto begin = std::sregex_iterator(comment.begin(), comment.end(), kDirective);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::set<std::string>* target =
        (*it)[1].str() == "allow" ? line_rules : file_rules;
    std::stringstream names((*it)[2].str());
    std::string name;
    while (std::getline(names, name, ',')) {
      const auto first = name.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      const auto last = name.find_last_not_of(" \t");
      target->insert(name.substr(first, last - first + 1));
    }
  }
}

// Whole-word search in comment text ('-' is part of the marker words,
// so is_ident boundaries on both sides are what we want).
bool comment_word(const std::string& comment, const char* word) {
  const std::size_t n = std::strlen(word);
  for (std::size_t pos = comment.find(word); pos != std::string::npos;
       pos = comment.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || (!is_ident(comment[pos - 1]) &&
                                      comment[pos - 1] != '-');
    const std::size_t end = pos + n;
    const bool right_ok = end >= comment.size() ||
                          (!is_ident(comment[end]) && comment[end] != '-');
    if (left_ok && right_ok) return true;
  }
  return false;
}

// True when the tail of `code_line` permits `R"` at the next position to
// open a raw string: either the previous character is a non-identifier,
// or the identifier tail is exactly one of the encoding prefixes
// (u8R, uR, UR, LR — the 'R' has not been appended yet).
bool raw_string_prefix_ok(const std::string& code_line) {
  const std::size_t n = code_line.size();
  if (n == 0 || !is_ident(code_line[n - 1])) return true;
  for (const char* prefix : {"u8", "u", "U", "L"}) {
    const std::size_t len = std::strlen(prefix);
    if (n >= len && code_line.compare(n - len, len, prefix) == 0 &&
        (n == len || !is_ident(code_line[n - len - 1]))) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool token_at(const std::string& code, std::size_t pos,
              const std::string& token) {
  if (code.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && is_ident(code[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  return end >= code.size() || !is_ident(code[end]);
}

std::string first_template_arg(const std::string& code, std::size_t open) {
  int depth = 0;
  std::size_t start = open + 1;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      --depth;
      if (depth == 0) {
        std::string arg = code.substr(start, i - start);
        const auto first = arg.find_first_not_of(" \t");
        if (first == std::string::npos) return "";
        const auto last = arg.find_last_not_of(" \t");
        return arg.substr(first, last - first + 1);
      }
    } else if (c == ',' && depth == 1) {
      std::string arg = code.substr(start, i - start);
      const auto first = arg.find_first_not_of(" \t");
      if (first == std::string::npos) return "";
      const auto last = arg.find_last_not_of(" \t");
      return arg.substr(first, last - first + 1);
    }
  }
  return "";
}

std::size_t past_angle_list(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

void emit(std::vector<Finding>* findings, const SourceFile& file,
          std::size_t line, const std::string& rule, const std::string& check,
          std::string message) {
  if (file.suppressed(line, rule)) return;
  findings->push_back({rule, check, file.rel_path, line, std::move(message)});
}

// Lexes the raw text: comments and string/char literals become spaces in
// the code view; comment text is scanned for suppression directives and
// hot-path markers. Handles //, /* */, "...", '...', raw strings with
// encoding prefixes ((u8|u|U|L)?R"delim(...)delim"), and backslash line
// splices inside line comments (translation phase 2: the comment
// continues onto the next physical line). A directive or marker on a
// line whose code view is blank also covers the following line.
SourceFile load_source(const std::filesystem::path& path,
                       std::string rel_path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pfm-analyze: cannot read " + rel_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  SourceFile out;
  out.rel_path = std::move(rel_path);

  enum class State { Code, LineComment, BlockComment, String, Char, RawString };
  State state = State::Code;
  std::string code_line;
  std::string comment_line;  // comment text seen on the current line
  std::string raw_delim;     // for R"delim( ... )delim"
  bool comment_spliced = false;  // line comment ended in backslash-newline

  std::string raw_line;
  auto flush_line = [&] {
    std::set<std::string> line_rules;
    parse_directive(comment_line, &line_rules, &out.allow_file);
    unsigned char mark = 0;
    if (comment_word(comment_line, "pfm-hot")) mark |= SourceFile::kHot;
    if (comment_word(comment_line, "pfm-cold")) mark |= SourceFile::kCold;
    out.code.push_back(code_line);
    out.raw.push_back(raw_line);
    out.allow.push_back(std::move(line_rules));
    out.marks.push_back(mark);
    code_line.clear();
    raw_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::LineComment && !comment_spliced) state = State::Code;
      comment_spliced = false;
      flush_line();
      continue;
    }
    raw_line += c;
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          comment_spliced = false;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          code_line += "  ";
          ++i;
        } else if (c == 'R' && next == '"' && raw_string_prefix_ok(code_line)) {
          // Raw string literal: find the delimiter up to the '('. The
          // opener cannot contain a newline — if it would, the literal
          // is malformed and we fall back to plain code so line
          // bookkeeping stays intact.
          const std::size_t paren = text.find('(', i + 2);
          const std::size_t newline = text.find('\n', i);
          if (paren == std::string::npos || newline < paren) {
            code_line += c;
          } else {
            raw_delim = ")" + text.substr(i + 2, paren - (i + 2)) + "\"";
            state = State::RawString;
            code_line += std::string(paren - i + 1, ' ');
            i = paren;  // consumed through '('
          }
        } else if (c == '"') {
          state = State::String;
          code_line += ' ';
        } else if (c == '\'') {
          state = State::Char;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::LineComment:
        comment_line += c;
        code_line += ' ';
        // Backslash-newline splices the next physical line into this
        // comment; without this the spliced text would lex as code.
        if (c == '\\') {
          std::size_t peek = i + 1;
          while (peek < text.size() &&
                 (text[peek] == ' ' || text[peek] == '\t' ||
                  text[peek] == '\r')) {
            ++peek;
          }
          if (peek >= text.size() || text[peek] == '\n') {
            comment_spliced = true;
          }
        }
        break;
      case State::BlockComment:
        comment_line += c;
        code_line += ' ';
        if (c == '*' && next == '/') {
          state = State::Code;
          code_line += ' ';
          comment_line.pop_back();
          ++i;
        }
        break;
      case State::String:
        code_line += ' ';
        if (c == '\\' && next != '\0' && next != '\n') {
          code_line += ' ';
          ++i;
        } else if (c == '"') {
          state = State::Code;
        }
        break;
      case State::Char:
        code_line += ' ';
        if (c == '\\' && next != '\0') {
          code_line += ' ';
          ++i;
        } else if (c == '\'') {
          state = State::Code;
        }
        break;
      case State::RawString:
        code_line += ' ';
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          code_line += std::string(raw_delim.size() - 1, ' ');
          i += raw_delim.size() - 1;
          state = State::Code;
        }
        break;
    }
  }
  flush_line();  // last line (also handles files without trailing \n)

  // A directive or marker on an otherwise-blank line covers the next
  // line too.
  for (std::size_t l = 0; l + 1 < out.allow.size(); ++l) {
    const bool blank =
        out.code[l].find_first_not_of(" \t\r") == std::string::npos;
    if (!blank) continue;
    if (!out.allow[l].empty()) {
      out.allow[l + 1].insert(out.allow[l].begin(), out.allow[l].end());
    }
    out.marks[l + 1] = static_cast<unsigned char>(out.marks[l + 1] |
                                                  out.marks[l]);
  }
  return out;
}

std::shared_ptr<const SourceFile> load_source_cached(
    const std::filesystem::path& path, std::string rel_path) {
  struct Entry {
    std::filesystem::file_time_type mtime;
    std::uintmax_t size = 0;
    std::string rel_path;
    std::shared_ptr<const SourceFile> file;
  };
  static std::mutex cache_mu;
  static std::map<std::string, Entry> cache;

  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  const auto size = std::filesystem::file_size(path, ec);

  const std::string key = path.lexically_normal().string();
  if (!ec) {
    std::lock_guard<std::mutex> lock(cache_mu);
    const auto it = cache.find(key);
    if (it != cache.end() && it->second.mtime == mtime &&
        it->second.size == size && it->second.rel_path == rel_path) {
      return it->second.file;
    }
  }

  auto loaded = std::make_shared<const SourceFile>(
      load_source(path, rel_path));
  if (!ec) {
    std::lock_guard<std::mutex> lock(cache_mu);
    cache[key] = Entry{mtime, size, std::move(rel_path), loaded};
  }
  return loaded;
}

}  // namespace pfm::lint
