#include "model.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <regex>

// The three graph-aware rule families. All of them consume the
// ProjectModel (function extents + call graph) rather than raw lines, so
// a violation two calls away from an annotated entry point is the same
// finding as one written inline.

namespace pfm::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule: hotpath — transitive closure from // pfm-hot seeds
// ---------------------------------------------------------------------------

bool std_qualified_at(const std::string& seg, std::size_t pos) {
  return pos >= 5 && seg.compare(pos - 5, 5, "std::") == 0;
}

// Scans one body line for hot-path violations and reports them through
// `report(check, message_fragment)`.
void scan_hot_line(
    const std::string& seg,
    const std::function<void(const char*, std::string)>& report) {
  // Heap allocation.
  for (std::size_t pos = seg.find("new"); pos != std::string::npos;
       pos = seg.find("new", pos + 1)) {
    if (!token_at(seg, pos, "new")) continue;
    report("allocation", "'new' allocates");
  }
  for (const char* name : {"make_unique", "make_shared"}) {
    for (std::size_t pos = seg.find(name); pos != std::string::npos;
         pos = seg.find(name, pos + 1)) {
      if (!token_at(seg, pos, name)) continue;
      report("allocation", std::string("'") + name + "' allocates");
    }
  }
  for (std::size_t pos = seg.find("to_string"); pos != std::string::npos;
       pos = seg.find("to_string", pos + 1)) {
    if (!token_at(seg, pos, "to_string")) continue;
    std::size_t after = pos + std::strlen("to_string");
    while (after < seg.size() && seg[after] == ' ') ++after;
    if (after >= seg.size() || seg[after] != '(') continue;
    report("allocation", "'std::to_string' builds a heap string");
  }
  // std::string construction (declarations and temporaries; references
  // and pointers pass through).
  for (std::size_t pos = seg.find("string"); pos != std::string::npos;
       pos = seg.find("string", pos + 1)) {
    if (!token_at(seg, pos, "string") || !std_qualified_at(seg, pos)) continue;
    std::size_t after = pos + std::strlen("string");
    while (after < seg.size() && seg[after] == ' ') ++after;
    if (after >= seg.size()) continue;
    const char c = seg[after];
    if (is_ident(c) || c == '(' || c == '{') {
      report("allocation", "'std::string' constructed");
    }
  }
  // Owning-container declarations.
  static const char* kContainers[] = {
      "vector", "deque", "list", "set", "map", "multimap", "multiset",
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "priority_queue", "basic_string"};
  for (const char* name : kContainers) {
    for (std::size_t pos = seg.find(name); pos != std::string::npos;
         pos = seg.find(name, pos + 1)) {
      if (!token_at(seg, pos, name) || !std_qualified_at(seg, pos)) continue;
      std::size_t open = pos + std::strlen(name);
      while (open < seg.size() && seg[open] == ' ') ++open;
      if (open >= seg.size() || seg[open] != '<') continue;
      std::size_t after = past_angle_list(seg, open);
      if (after == std::string::npos) continue;  // multi-line decl
      while (after < seg.size() && seg[after] == ' ') ++after;
      if (after < seg.size() && is_ident(seg[after]) &&
          !token_at(seg, after, "npos")) {
        report("allocation",
               std::string("local 'std::") + name + "' declared");
      }
    }
  }
  // std::function by value.
  for (std::size_t pos = seg.find("function"); pos != std::string::npos;
       pos = seg.find("function", pos + 1)) {
    if (!token_at(seg, pos, "function") || !std_qualified_at(seg, pos)) {
      continue;
    }
    std::size_t open = pos + std::strlen("function");
    while (open < seg.size() && seg[open] == ' ') ++open;
    if (open >= seg.size() || seg[open] != '<') continue;
    std::size_t after = past_angle_list(seg, open);
    if (after == std::string::npos) continue;
    while (after < seg.size() && seg[after] == ' ') ++after;
    if (after < seg.size() && (seg[after] == '&' || seg[after] == '*')) {
      continue;
    }
    report("allocation", "'std::function' owned by value");
  }
  // throw.
  for (std::size_t pos = seg.find("throw"); pos != std::string::npos;
       pos = seg.find("throw", pos + 1)) {
    if (!token_at(seg, pos, "throw")) continue;
    report("throw", "'throw' raises");
  }
  // Mutex acquisition.
  for (const char* name :
       {"MutexLock", "lock_guard", "unique_lock", "scoped_lock"}) {
    for (std::size_t pos = seg.find(name); pos != std::string::npos;
         pos = seg.find(name, pos + 1)) {
      if (!token_at(seg, pos, name)) continue;
      report("mutex", std::string("'") + name + "' acquires a lock");
    }
  }
  for (const char* pat : {".lock(", "->lock("}) {
    for (std::size_t pos = seg.find(pat); pos != std::string::npos;
         pos = seg.find(pat, pos + 1)) {
      report("mutex", "explicit '.lock()' acquires a lock");
    }
  }
  // Stream / console I/O.
  for (const char* name :
       {"cout", "cerr", "clog", "printf", "fprintf", "sprintf", "snprintf",
        "puts", "fputs", "ofstream", "ifstream", "fstream", "stringstream",
        "ostringstream", "istringstream", "getline"}) {
    for (std::size_t pos = seg.find(name); pos != std::string::npos;
         pos = seg.find(name, pos + 1)) {
      if (!token_at(seg, pos, name)) continue;
      report("stream-io", std::string("'") + name + "' performs stream I/O");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: walltaint — wall-clock values flowing into sim-time exports
// ---------------------------------------------------------------------------

struct BodyLine {
  std::size_t line = 0;
  std::string seg;
};

std::vector<BodyLine> body_lines(const FunctionDef& fn) {
  std::vector<BodyLine> out;
  for_each_body_line(fn, [&](std::size_t line, const std::string& seg) {
    out.push_back({line, seg});
  });
  return out;
}

bool has_token_of(const std::string& seg, const std::set<std::string>& names) {
  for (const auto& name : names) {
    for (std::size_t pos = seg.find(name); pos != std::string::npos;
         pos = seg.find(name, pos + 1)) {
      if (token_at(seg, pos, name)) return true;
    }
  }
  return false;
}

// Does this expression carry wall time? Sources: the wall clocks
// themselves, file-local aliases of them, calls to functions known to
// return wall durations, and variables already tainted in this scope.
bool expr_tainted(const std::string& expr,
                  const std::set<std::string>& aliases,
                  const std::set<std::string>& tainted_fns,
                  const std::set<std::string>& vars) {
  static const std::set<std::string> kClocks = {"steady_clock",
                                                "high_resolution_clock"};
  return has_token_of(expr, kClocks) || has_token_of(expr, aliases) ||
         has_token_of(expr, tainted_fns) || has_token_of(expr, vars);
}

// Joins seg with up to `extra` following body lines (for call arguments
// and registrations that span lines).
std::string joined_window(const std::vector<BodyLine>& lines,
                          std::size_t index, std::size_t extra) {
  std::string out = lines[index].seg;
  for (std::size_t j = 1; j <= extra && index + j < lines.size(); ++j) {
    out += " " + lines[index + j].seg;
  }
  return out;
}

// Tainted local variables of one function body under the current
// tainted-function set. Two passes give assignment-chain transitivity
// (a = wall(); b = a;) independent of statement order.
std::set<std::string> tainted_vars(const std::vector<BodyLine>& lines,
                                   const std::set<std::string>& aliases,
                                   const std::set<std::string>& tainted_fns) {
  std::set<std::string> vars;
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& bl : lines) {
      const std::string& seg = bl.seg;
      for (std::size_t i = 0; i < seg.size(); ++i) {
        if (seg[i] != '=') continue;
        const char prev = i > 0 ? seg[i - 1] : '\0';
        const char next = i + 1 < seg.size() ? seg[i + 1] : '\0';
        if (next == '=' || std::strchr("=!<>+-*/%&|^", prev)) continue;
        std::size_t end = i;
        while (end > 0 && (seg[end - 1] == ' ' || seg[end - 1] == '\t')) {
          --end;
        }
        std::size_t begin = end;
        while (begin > 0 && is_ident(seg[begin - 1])) --begin;
        if (begin == end) continue;
        const std::string lhs = seg.substr(begin, end - begin);
        std::string rhs = seg.substr(i + 1);
        const std::size_t semi = rhs.find(';');
        if (semi != std::string::npos) rhs.resize(semi);
        if (expr_tainted(rhs, aliases, tainted_fns, vars)) {
          vars.insert(lhs);
        }
      }
    }
  }
  return vars;
}

bool returns_tainted(const std::vector<BodyLine>& lines,
                     const std::set<std::string>& aliases,
                     const std::set<std::string>& tainted_fns,
                     const std::set<std::string>& vars) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& seg = lines[i].seg;
    for (std::size_t pos = seg.find("return"); pos != std::string::npos;
         pos = seg.find("return", pos + 1)) {
      if (!token_at(seg, pos, "return")) continue;
      std::string expr = seg.substr(pos + 6);
      for (std::size_t j = 1; j <= 3 && i + j < lines.size(); ++j) {
        if (expr.find(';') != std::string::npos) break;
        expr += " " + lines[i + j].seg;
      }
      const std::size_t semi = expr.find(';');
      if (semi != std::string::npos) expr.resize(semi);
      if (expr_tainted(expr, aliases, tainted_fns, vars)) return true;
    }
  }
  return false;
}

// Call-argument window: text from the '(' at `open` to its match,
// joining following lines when it does not close locally.
std::string call_args(const std::vector<BodyLine>& lines, std::size_t index,
                      std::size_t open) {
  std::string window = joined_window(lines, index, 3);
  int depth = 0;
  for (std::size_t i = open; i < window.size(); ++i) {
    if (window[i] == '(') ++depth;
    if (window[i] == ')' && --depth == 0) {
      return window.substr(open + 1, i - open - 1);
    }
  }
  return window.substr(open + 1);
}

// ---------------------------------------------------------------------------
// Rule: lockdiscipline — PFM_GUARDED_BY vs. actual lock scopes
// ---------------------------------------------------------------------------

struct LockEvent {
  enum Kind { Open, Close, Acquire, Release, Access } kind = Open;
  std::size_t col = 0;
  std::string cap;    // Acquire/Release
  std::string field;  // Access
};

void add_regex_events(const std::string& seg, const std::regex& re,
                      LockEvent::Kind kind, std::vector<LockEvent>* events) {
  for (auto it = std::sregex_iterator(seg.begin(), seg.end(), re);
       it != std::sregex_iterator(); ++it) {
    LockEvent ev;
    ev.kind = kind;
    ev.col = static_cast<std::size_t>(it->position(0));
    ev.cap = (*it)[1].str();
    events->push_back(ev);
  }
}

}  // namespace

void rule_hotpath(const ProjectModel& model, std::vector<Finding>* findings) {
  const std::size_t n = model.functions.size();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> origin(n, kNone);
  std::vector<std::size_t> via(n, kNone);
  std::vector<std::size_t> hops(n, 0);
  std::deque<std::size_t> queue;

  for (std::size_t i = 0; i < n; ++i) {
    const FunctionDef& fn = model.functions[i];
    if (fn.hot && !fn.cold) {
      origin[i] = i;
      queue.push_back(i);
    }
  }

  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    const FunctionDef& fn = model.functions[u];

    std::string context;
    if (hops[u] == 0) {
      context = "in pfm-hot function '" + fn.display + "'";
    } else {
      context = "in '" + fn.display + "', reached from pfm-hot '" +
                model.functions[origin[u]].display + "'";
      if (hops[u] > 1) {
        context += " via '" + model.functions[via[u]].display + "' (" +
                   std::to_string(hops[u]) + " calls deep)";
      }
    }

    for_each_body_line(fn, [&](std::size_t line, const std::string& seg) {
      scan_hot_line(seg, [&](const char* check, std::string what) {
        emit(findings, *fn.file, line, "hotpath", check,
             what + " " + context +
                 "; hoist to setup / pre-reserved scratch, or mark the "
                 "slow path // pfm-cold");
      });
    });

    for (const std::size_t v : fn.calls) {
      if (origin[v] != kNone) continue;
      if (model.functions[v].cold) continue;
      origin[v] = origin[u];
      via[v] = u;
      hops[v] = hops[u] + 1;
      queue.push_back(v);
    }
  }
}

void rule_walltaint(const ProjectModel& model, std::vector<Finding>* findings) {
  // Fixpoint: which project functions return wall-derived values.
  std::set<std::string> tainted_fns;
  std::vector<std::vector<BodyLine>> bodies(model.functions.size());
  for (std::size_t i = 0; i < model.functions.size(); ++i) {
    bodies[i] = body_lines(model.functions[i]);
  }
  for (int iter = 0; iter < 10; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < model.functions.size(); ++i) {
      const FunctionDef& fn = model.functions[i];
      if (tainted_fns.count(fn.name)) continue;
      const auto alias_it = model.wall_aliases.find(fn.file->rel_path);
      static const std::set<std::string> kNoAliases;
      const auto& aliases = alias_it != model.wall_aliases.end()
                                ? alias_it->second
                                : kNoAliases;
      const auto vars = tainted_vars(bodies[i], aliases, tainted_fns);
      if (returns_tainted(bodies[i], aliases, tainted_fns, vars)) {
        tainted_fns.insert(fn.name);
        changed = true;
      }
    }
    if (!changed) break;
  }

  static const std::regex kInstrumentSink(
      R"(([A-Za-z_]\w*)\s*(?:\.|->)\s*(inc|observe|set|add)\s*\()");
  static const std::regex kScopedSpan(
      R"(\bScopedSpan\s+\w+\s*[({])");

  for (std::size_t i = 0; i < model.functions.size(); ++i) {
    const FunctionDef& fn = model.functions[i];
    const auto alias_it = model.wall_aliases.find(fn.file->rel_path);
    static const std::set<std::string> kNoAliases;
    const auto& aliases = alias_it != model.wall_aliases.end()
                              ? alias_it->second
                              : kNoAliases;
    const auto vars = tainted_vars(bodies[i], aliases, tainted_fns);
    auto tainted = [&](const std::string& expr) {
      return expr_tainted(expr, aliases, tainted_fns, vars);
    };

    for (std::size_t li = 0; li < bodies[i].size(); ++li) {
      const std::string& seg = bodies[i][li].seg;
      const std::size_t line = bodies[i][li].line;

      // Sim-clocked metric instruments.
      for (auto it = std::sregex_iterator(seg.begin(), seg.end(),
                                          kInstrumentSink);
           it != std::sregex_iterator(); ++it) {
        const std::string receiver = (*it)[1].str();
        const auto inst = model.instruments.find(receiver);
        if (inst == model.instruments.end() || !inst->second.sim) continue;
        const std::size_t open =
            static_cast<std::size_t>(it->position(0)) + it->length(0) - 1;
        if (tainted(call_args(bodies[i], li, open))) {
          emit(findings, *fn.file, line, "walltaint", "wall-into-sim-metric",
               "wall-clock value flows into '" + receiver +
                   "', registered as a sim-time instrument (" +
                   inst->second.file + ":" +
                   std::to_string(inst->second.line) +
                   "); use sim time, or register the instrument with "
                   "obs::Clock::kWall");
        }
      }

      // Sim-time trace emission.
      for (std::size_t pos = seg.find("set_sim_end");
           pos != std::string::npos; pos = seg.find("set_sim_end", pos + 1)) {
        if (!token_at(seg, pos, "set_sim_end")) continue;
        const std::size_t open = seg.find('(', pos);
        if (open == std::string::npos) continue;
        if (seg.find('{', pos) < open) continue;  // definition header
        if (tainted(call_args(bodies[i], li, open))) {
          emit(findings, *fn.file, line, "walltaint", "wall-into-sim-trace",
               "wall-clock value passed to set_sim_end(); span sim "
               "boundaries must be sim time");
        }
      }
      for (std::size_t pos = seg.find("record_instant");
           pos != std::string::npos;
           pos = seg.find("record_instant", pos + 1)) {
        if (!token_at(seg, pos, "record_instant")) continue;
        const std::size_t open = seg.find('(', pos);
        if (open == std::string::npos) continue;
        if (tainted(call_args(bodies[i], li, open))) {
          emit(findings, *fn.file, line, "walltaint", "wall-into-sim-trace",
               "wall-clock value passed to record_instant(); instant "
               "events are stamped in sim time");
        }
      }
      for (auto it = std::sregex_iterator(seg.begin(), seg.end(),
                                          kScopedSpan);
           it != std::sregex_iterator(); ++it) {
        const std::size_t open =
            static_cast<std::size_t>(it->position(0)) + it->length(0) - 1;
        if (tainted(call_args(bodies[i], li, open))) {
          emit(findings, *fn.file, line, "walltaint", "wall-into-sim-trace",
               "wall-clock value passed to a ScopedSpan constructor; "
               "span sim boundaries must be sim time");
        }
      }
    }
  }
}

void rule_lockdiscipline(const ProjectModel& model,
                         std::vector<Finding>* findings) {
  static const std::regex kScopedAcquire(
      R"(\b(?:MutexLock|RoleGuard)\s+\w+\s*\(\s*([A-Za-z_]\w*))");
  static const std::regex kStdAcquire(
      R"(\b(?:lock_guard|unique_lock|scoped_lock)\s*(?:<[^<>]*>)?\s+\w+\s*[({]\s*([A-Za-z_]\w*))");
  static const std::regex kManualAcquire(
      R"(([A-Za-z_]\w*)\s*\.\s*lock\s*\(\s*\))");
  static const std::regex kManualRelease(
      R"(([A-Za-z_]\w*)\s*\.\s*unlock\s*\(\s*\))");

  for (const FunctionDef& fn : model.functions) {
    if (fn.class_name.empty() || fn.is_ctor_dtor || fn.lock_exempt) continue;
    const auto guarded_it = model.guarded.find(fn.class_name);
    if (guarded_it == model.guarded.end()) continue;
    const auto& guarded_fields = guarded_it->second;

    struct Held {
      std::string cap;
      int depth = 0;
      bool manual = false;
    };
    std::vector<Held> held;
    int depth = 0;
    auto is_held = [&](const std::string& cap) {
      if (fn.required_caps.count(cap)) return true;
      for (const auto& h : held) {
        if (h.cap == cap) return true;
      }
      return false;
    };

    for_each_body_line(fn, [&](std::size_t line, const std::string& seg) {
      std::vector<LockEvent> events;
      for (std::size_t i = 0; i < seg.size(); ++i) {
        if (seg[i] == '{') events.push_back({LockEvent::Open, i, "", ""});
        if (seg[i] == '}') events.push_back({LockEvent::Close, i, "", ""});
      }
      add_regex_events(seg, kScopedAcquire, LockEvent::Acquire, &events);
      add_regex_events(seg, kStdAcquire, LockEvent::Acquire, &events);
      add_regex_events(seg, kManualAcquire, LockEvent::Acquire, &events);
      add_regex_events(seg, kManualRelease, LockEvent::Release, &events);
      for (const auto& [field, cap] : guarded_fields) {
        for (std::size_t pos = seg.find(field); pos != std::string::npos;
             pos = seg.find(field, pos + 1)) {
          if (!token_at(seg, pos, field)) continue;
          // `other.field` / `ptr->field` reach a different instance;
          // only unqualified and `this->` accesses are checked.
          if (pos > 0 && seg[pos - 1] == '.') continue;
          if (pos >= 2 && seg.compare(pos - 2, 2, "->") == 0) {
            std::size_t end = pos - 2;
            while (end > 0 && (seg[end - 1] == ' ')) --end;
            std::size_t begin = end;
            while (begin > 0 && is_ident(seg[begin - 1])) --begin;
            if (seg.substr(begin, end - begin) != "this") continue;
          }
          LockEvent ev;
          ev.kind = LockEvent::Access;
          ev.col = pos;
          ev.field = field;
          ev.cap = cap;
          events.push_back(ev);
        }
      }
      std::stable_sort(events.begin(), events.end(),
                       [](const LockEvent& a, const LockEvent& b) {
                         return a.col < b.col;
                       });
      for (const auto& ev : events) {
        switch (ev.kind) {
          case LockEvent::Open:
            ++depth;
            break;
          case LockEvent::Close:
            --depth;
            held.erase(std::remove_if(held.begin(), held.end(),
                                      [&](const Held& h) {
                                        return h.depth > depth;
                                      }),
                       held.end());
            break;
          case LockEvent::Acquire:
            if (is_held(ev.cap)) {
              emit(findings, *fn.file, line, "lockdiscipline",
                   "double-acquire",
                   "'" + ev.cap + "' is already held in '" + fn.display +
                       "' (re-acquiring a non-recursive capability "
                       "deadlocks)");
            }
            held.push_back({ev.cap, depth, false});
            break;
          case LockEvent::Release: {
            for (std::size_t h = held.size(); h > 0; --h) {
              if (held[h - 1].cap == ev.cap) {
                held.erase(held.begin() + static_cast<std::ptrdiff_t>(h - 1));
                break;
              }
            }
            break;
          }
          case LockEvent::Access:
            if (!is_held(ev.cap)) {
              emit(findings, *fn.file, line, "lockdiscipline",
                   "guarded-access",
                   "'" + fn.class_name + "::" + ev.field +
                       "' is PFM_GUARDED_BY(" + ev.cap +
                       ") but '" + fn.display +
                       "' touches it with no lock scope holding it; "
                       "acquire the capability or annotate the function "
                       "PFM_REQUIRES(" + ev.cap + ")");
            }
            break;
        }
      }
    });
  }
}

}  // namespace pfm::lint
