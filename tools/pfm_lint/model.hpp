#pragma once

// pfm-analyze semantic layer: a lightweight function/scope parser over
// the lexed code views. It recovers, per translation unit, the function
// definitions (with namespace/class context, header and body extents,
// pfm-hot / pfm-cold markers and PFM_* thread-safety attributes), the
// project-wide PFM_GUARDED_BY field map, the metrics-instrument clock
// map, and a name-resolved intra-project call graph.
//
// Parsing is brace-structural, not grammatical: it tracks scopes by
// classifying the "pending header" (code accumulated since the last
// ';', '{' or '}') whenever a '{' opens. That is enough to attribute
// every body line to a function and to link receiver-less calls
// (`f(...)`, `ns::f(...)`, `Class::f(...)`, `this->f(...)`). Calls
// through an object (`x.f()`, `p->f()`) are dynamic-dispatch boundaries
// the graph deliberately does not cross — see DESIGN.md §7.

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"
#include "source.hpp"

namespace pfm::lint {

struct FunctionDef {
  const SourceFile* file = nullptr;
  std::string name;        // "score_batch"
  std::string class_name;  // "UbfPredictor"; "" for free functions
  std::string display;     // "UbfPredictor::score_batch"
  std::size_t header_line = 0;      // 1-based first line of the header
  std::size_t body_open_line = 0;   // line holding the opening '{'
  std::size_t body_open_col = 0;    // column just past that '{'
  std::size_t body_close_line = 0;  // line holding the matching '}'
  std::size_t body_close_col = 0;   // column of that '}'
  bool hot = false;                 // seeded by "// pfm-hot"
  bool cold = false;                // closure boundary, "// pfm-cold"
  bool lock_exempt = false;         // PFM_NO_THREAD_SAFETY_ANALYSIS /
                                    // PFM_ACQUIRE / PFM_RELEASE
  bool is_ctor_dtor = false;
  std::set<std::string> required_caps;  // PFM_REQUIRES(...) arguments
  std::vector<std::size_t> calls;       // indices into ProjectModel::functions
};

struct InstrumentClock {
  bool sim = false;      // registered against obs sim time
  std::size_t line = 0;  // registration site (diagnostics)
  std::string file;
};

struct ProjectModel {
  // Keeps the lexed views alive for the FunctionDef::file pointers.
  std::vector<std::shared_ptr<const SourceFile>> files;
  std::vector<FunctionDef> functions;
  // function name -> indices into `functions` (definitions only).
  std::map<std::string, std::vector<std::size_t>> by_name;
  // class -> (field -> capability) from PFM_GUARDED_BY declarations.
  std::map<std::string, std::map<std::string, std::string>> guarded;
  // metric-instrument variable name (last path component of the LHS at
  // the registration site) -> which clock it was registered under.
  std::map<std::string, InstrumentClock> instruments;
  // file rel_path -> wall-clock type aliases declared in that file
  // (e.g. "WallClock" for `using WallClock = std::chrono::steady_clock`).
  std::map<std::string, std::set<std::string>> wall_aliases;
};

/// Builds the model over the given files (callers pass the src/ views;
/// tests and fixtures under a tree's src/ are modeled the same way).
ProjectModel build_model(std::vector<std::shared_ptr<const SourceFile>> files);

/// Invokes `fn(line_no, segment, col_offset)` for every code-view line
/// of the function body, clipped to the body's braces. `col_offset` is
/// the column in the original line where `segment` begins (findings need
/// original line numbers; columns matter only within the segment).
void for_each_body_line(
    const FunctionDef& def,
    const std::function<void(std::size_t, const std::string&)>& fn);

// The three graph-aware rule families (rule names: "hotpath",
// "walltaint", "lockdiscipline").
void rule_hotpath(const ProjectModel& model, std::vector<Finding>* findings);
void rule_walltaint(const ProjectModel& model, std::vector<Finding>* findings);
void rule_lockdiscipline(const ProjectModel& model,
                         std::vector<Finding>* findings);

}  // namespace pfm::lint
