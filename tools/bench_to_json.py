#!/usr/bin/env python3
"""Run the fleet benches and collect their JSON-line output into files.

The bench binaries print one ``{"bench": ...}`` object per configuration
amid their human-readable tables. This script runs

  - ``bench_fleet_throughput``  ->  BENCH_fleet.json
  - ``bench_fault_injection``   ->  BENCH_injection.json

scrapes those lines, and writes each file as a JSON array, so dashboards
and regression checks can consume bench results without parsing tables.

Usage:
  tools/bench_to_json.py [--build-dir build] [--out-dir .]

Exits non-zero when a bench fails, emits no JSON lines, or (for the
observability overhead arm) reports an overhead above the 5% budget.
"""

import argparse
import json
import pathlib
import subprocess
import sys

BENCHES = {
    "bench_fleet_throughput": "BENCH_fleet.json",
    "bench_fault_injection": "BENCH_injection.json",
}

# Acceptance budget for the fleet_obs_overhead arm (fraction, not %).
OBS_OVERHEAD_BUDGET = 0.05


def scrape_json_lines(text: str) -> list:
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith('{"bench"'):
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as err:
            print(f"warning: unparsable bench line ({err}): {line}",
                  file=sys.stderr)
    return records


def run_bench(binary: pathlib.Path) -> list:
    # --benchmark_filter=NONE skips the microbenchmark section; the
    # experiment tables (and their JSON lines) always run.
    proc = subprocess.run(
        [str(binary), "--benchmark_filter=NONE"],
        capture_output=True,
        text=True,
    )
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"{binary.name} exited with {proc.returncode}")
    return scrape_json_lines(proc.stdout)


def check_obs_overhead(records: list) -> None:
    for record in records:
        if record.get("bench") != "fleet_obs_overhead":
            continue
        overhead = record.get("overhead_pct", 0.0) / 100.0
        dropped = record.get("spans_dropped", 0)
        print(f"obs overhead: {overhead * 100.0:+.2f}% "
              f"({record.get('spans_recorded', 0)} spans, {dropped} dropped)")
        if overhead > OBS_OVERHEAD_BUDGET:
            raise SystemExit(
                f"observability overhead {overhead * 100.0:.2f}% exceeds "
                f"the {OBS_OVERHEAD_BUDGET * 100.0:.0f}% budget")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree containing bench/")
    parser.add_argument("--out-dir", default=".",
                        help="where the BENCH_*.json files go")
    args = parser.parse_args()

    bench_dir = pathlib.Path(args.build_dir) / "bench"
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    for name, out_name in BENCHES.items():
        binary = bench_dir / name
        if not binary.exists():
            raise SystemExit(f"{binary} not found — build the '{name}' "
                             "target first")
        records = run_bench(binary)
        if not records:
            raise SystemExit(f"{name} produced no JSON lines")
        if name == "bench_fleet_throughput":
            check_obs_overhead(records)
        out_path = out_dir / out_name
        out_path.write_text(json.dumps(records, indent=2) + "\n")
        print(f"wrote {out_path} ({len(records)} records)")


if __name__ == "__main__":
    main()
