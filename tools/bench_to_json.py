#!/usr/bin/env python3
"""Run the fleet benches and collect their JSON-line output into files.

The bench binaries print one ``{"bench": ...}`` object per configuration
amid their human-readable tables. This script runs

  - ``bench_fleet_throughput``  ->  BENCH_fleet.json
  - ``bench_fleet_churn``       ->  BENCH_fleet.json (merged)
  - ``bench_fleet_quality``     ->  BENCH_fleet.json (merged)
  - ``bench_fault_injection``   ->  BENCH_injection.json

scrapes those lines, and writes each file as a JSON array (benches
sharing an output file contribute to one merged array, in bench order),
so dashboards and regression checks can consume bench results without
parsing tables.

All benches are run and validated before any output file is touched:
a missing binary, a failing bench, or a bench that emits no JSON lines
exits non-zero with every BENCH_*.json unchanged — never a partial
refresh.

Gates (each exits non-zero on violation):
  - the observability overhead arm must stay within the 5% budget;
  - the optimized fleet path must not run >10% slower than the
    reference path, and its reference/optimized speedup must not
    regress >10% against the committed BENCH_fleet.json (the ratio is
    machine-relative, so the gate is portable across hosts);
  - the sharded event-driven scheduler (8 shards, 8 threads) must beat
    the 8-thread lockstep baseline of the shard-scaling arm by >=1.5x
    wall time over the same fleet and sim horizon;
  - the vectorized Eq. 1 kernel sweep must beat the scalar reference
    sweep by >=2x on the same pre-gathered columns whenever a vector
    backend (avx2/neon) is compiled in; on the scalar fallback the
    gate is skipped (there is nothing to vectorize with), so the
    script passes everywhere;
  - the frozen-artifact serving path must stay within 30% of the live
    engine's scoring rate (both wrap the same sweep, so a larger gap
    means the mmap serving path grew overhead);
  - an armed-but-idle elastic membership config must cost < 5% wall
    time against the inactive default on a churn-free run (the
    fleet_churn_overhead arm of bench_fleet_churn);
  - the online quality scoreboard + flight recorder must cost < 5%
    wall time against the quality-free default on the same fleet (the
    fleet_quality_overhead arm of bench_fleet_quality), and must have
    resolved at least one instant for the ratio to mean anything.

Usage:
  tools/bench_to_json.py [--build-dir build] [--out-dir .] [--quick]
"""

import argparse
import json
import pathlib
import subprocess
import sys

BENCHES = {
    "bench_fleet_throughput": "BENCH_fleet.json",
    "bench_fleet_churn": "BENCH_fleet.json",
    "bench_fleet_quality": "BENCH_fleet.json",
    "bench_fault_injection": "BENCH_injection.json",
}

# Benches that understand the --quick trim flag.
QUICK_AWARE = {"bench_fleet_throughput", "bench_fleet_churn",
               "bench_fleet_quality"}

# Acceptance budget for the fleet_obs_overhead arm (fraction, not %).
OBS_OVERHEAD_BUDGET = 0.05

# Acceptance budget for the fleet_churn_overhead arm: elasticity that
# never fires may cost at most this fraction on a churn-free run.
CHURN_OVERHEAD_BUDGET = 0.05

# Acceptance budget for the fleet_quality_overhead arm: the online
# scoreboard + flight recorder against the quality-free default.
QUALITY_OVERHEAD_BUDGET = 0.05

# The optimized path may lose at most this fraction against the
# reference path, and against its own committed speedup.
PATH_REGRESSION_BUDGET = 0.10

# The event-driven sharded scheduler (8 shards, 8 threads) must cover the
# same fleet and sim horizon in at most 1/1.5 the lockstep wall time.
SHARD_SPEEDUP_FLOOR = 1.5

# The vectorized kernel sweep must beat the scalar sweep by this factor
# when a vector backend is live; skipped on the scalar fallback.
SIMD_SPEEDUP_FLOOR = 2.0

# The frozen serving path may score at worst this fraction of the live
# engine's rate (same sweep underneath — the gap is serving overhead).
FROZEN_SERVING_RATIO_FLOOR = 0.7


def scrape_json_lines(text: str) -> list:
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith('{"bench"'):
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as err:
            print(f"warning: unparsable bench line ({err}): {line}",
                  file=sys.stderr)
    return records


def run_bench(binary: pathlib.Path, quick: bool) -> list:
    # --benchmark_filter=NONE skips the microbenchmark section; the
    # experiment tables (and their JSON lines) always run.
    cmd = [str(binary), "--benchmark_filter=NONE"]
    if quick and binary.name in QUICK_AWARE:
        cmd.append("--quick")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"{binary.name} exited with {proc.returncode}")
    return scrape_json_lines(proc.stdout)


def check_obs_overhead(records: list) -> None:
    for record in records:
        if record.get("bench") != "fleet_obs_overhead":
            continue
        overhead = record.get("overhead_pct", 0.0) / 100.0
        dropped = record.get("spans_dropped", 0)
        print(f"obs overhead: {overhead * 100.0:+.2f}% "
              f"({record.get('spans_recorded', 0)} spans, {dropped} dropped)")
        if overhead > OBS_OVERHEAD_BUDGET:
            raise SystemExit(
                f"observability overhead {overhead * 100.0:.2f}% exceeds "
                f"the {OBS_OVERHEAD_BUDGET * 100.0:.0f}% budget")


def check_churn_overhead(records: list) -> None:
    seen = False
    for record in records:
        if record.get("bench") != "fleet_churn_overhead":
            continue
        seen = True
        overhead = record.get("overhead_pct", 0.0) / 100.0
        joins = record.get("policy_joins", 0)
        print(f"elastic membership overhead (armed-but-idle vs off): "
              f"{overhead * 100.0:+.2f}% ({joins} policy joins)")
        if joins != 0:
            raise SystemExit(
                "the armed-but-idle churn overhead arm performed "
                f"{joins} policy joins — the ratio is not an overhead "
                "measurement")
        if overhead > CHURN_OVERHEAD_BUDGET:
            raise SystemExit(
                f"elastic membership overhead {overhead * 100.0:.2f}% "
                f"exceeds the {CHURN_OVERHEAD_BUDGET * 100.0:.0f}% budget")
    if not seen:
        raise SystemExit(
            "bench_fleet_churn emitted no fleet_churn_overhead row")


def check_quality_overhead(records: list) -> None:
    seen = False
    for record in records:
        if record.get("bench") != "fleet_quality_overhead":
            continue
        seen = True
        overhead = record.get("overhead_pct", 0.0) / 100.0
        resolved = record.get("instants_resolved", 0)
        print(f"quality scoreboard overhead (on vs off): "
              f"{overhead * 100.0:+.2f}% ({resolved} instants resolved)")
        if resolved <= 0:
            raise SystemExit(
                "the quality overhead arm resolved no instants — the "
                "scoreboard did no work, so the ratio is not an overhead "
                "measurement")
        if overhead > QUALITY_OVERHEAD_BUDGET:
            raise SystemExit(
                f"quality scoreboard overhead {overhead * 100.0:.2f}% "
                f"exceeds the {QUALITY_OVERHEAD_BUDGET * 100.0:.0f}% budget")
    if not seen:
        raise SystemExit(
            "bench_fleet_quality emitted no fleet_quality_overhead row")


def path_speedup(records: list):
    """reference/optimized wall-time ratio of the fleet_path arm, or None."""
    walls = {}
    for record in records:
        if record.get("bench") != "fleet_path":
            continue
        wall = record.get("wall_seconds", 0.0)
        if wall > 0.0:
            walls[record.get("path")] = wall
    if "reference" in walls and "optimized" in walls:
        return walls["reference"] / walls["optimized"]
    return None


def check_path_regression(records: list, baseline_records: list) -> None:
    speedup = path_speedup(records)
    if speedup is None:
        raise SystemExit(
            "bench_fleet_throughput emitted no complete fleet_path arm "
            "(need one reference and one optimized row)")
    print(f"fleet path speedup (reference/optimized): {speedup:.3f}x")
    if speedup < 1.0 - PATH_REGRESSION_BUDGET:
        raise SystemExit(
            f"optimized fleet path is {(1.0 - speedup) * 100.0:.1f}% slower "
            f"than the reference path (budget "
            f"{PATH_REGRESSION_BUDGET * 100.0:.0f}%)")
    baseline = path_speedup(baseline_records)
    if baseline is None:
        print("no fleet_path arm in the committed baseline — skipping the "
              "speedup-regression comparison")
        return
    floor = baseline * (1.0 - PATH_REGRESSION_BUDGET)
    print(f"committed baseline speedup: {baseline:.3f}x (floor {floor:.3f}x)")
    if speedup < floor:
        raise SystemExit(
            f"fleet path speedup regressed: {speedup:.3f}x < {floor:.3f}x "
            f"(committed {baseline:.3f}x minus the "
            f"{PATH_REGRESSION_BUDGET * 100.0:.0f}% budget)")


def shard_speedup(records: list):
    """8-shard/8-thread event wall vs the 8-thread lockstep wall of the
    shard-scaling arm, or None if either row is missing. Rows must agree
    on the fleet size (the bench emits both from the same grid)."""
    lockstep = None
    event = None
    for record in records:
        if record.get("bench") != "fleet_shard_scaling":
            continue
        if record.get("threads") != 8:
            continue
        if record.get("mode") == "lockstep":
            lockstep = record
        elif record.get("mode") == "event" and record.get("shards") == 8:
            event = record
    if lockstep is None or event is None:
        return None
    if lockstep.get("nodes") != event.get("nodes"):
        return None
    lock_wall = lockstep.get("wall_seconds", 0.0)
    event_wall = event.get("wall_seconds", 0.0)
    if lock_wall <= 0.0 or event_wall <= 0.0:
        return None
    return lock_wall / event_wall


def check_shard_scaling(records: list) -> None:
    speedup = shard_speedup(records)
    if speedup is None:
        raise SystemExit(
            "bench_fleet_throughput emitted no complete fleet_shard_scaling "
            "arm (need an 8-thread lockstep row and an 8-shard/8-thread "
            "event row over the same fleet)")
    print(f"shard scheduler speedup (lockstep/event, 8 shards, 8 threads): "
          f"{speedup:.3f}x")
    if speedup < SHARD_SPEEDUP_FLOOR:
        raise SystemExit(
            f"sharded event-driven scheduler speedup {speedup:.3f}x is below "
            f"the {SHARD_SPEEDUP_FLOOR:.1f}x floor against the lockstep "
            f"baseline")


def check_simd_sweep(records: list) -> None:
    seen = False
    for record in records:
        if record.get("bench") != "simd_kernel_sweep":
            continue
        seen = True
        backend = record.get("backend", "")
        speedup = record.get("speedup", 0.0)
        if backend == "scalar":
            print(f"simd kernel sweep: scalar backend compiled in — "
                  f"skipping the {SIMD_SPEEDUP_FLOOR:.0f}x gate "
                  f"(measured {speedup:.3f}x)")
            continue
        print(f"simd kernel sweep ({backend}): {speedup:.3f}x over the "
              f"scalar reference")
        if speedup < SIMD_SPEEDUP_FLOOR:
            raise SystemExit(
                f"simd kernel sweep speedup {speedup:.3f}x on the "
                f"{backend} backend is below the "
                f"{SIMD_SPEEDUP_FLOOR:.1f}x floor")
    if not seen:
        raise SystemExit(
            "bench_fleet_throughput emitted no simd_kernel_sweep row")


def check_frozen_serving(records: list) -> None:
    seen = False
    for record in records:
        if record.get("bench") != "frozen_serving":
            continue
        seen = True
        ratio = record.get("ratio", 0.0)
        print(f"frozen serving rate vs live engine: {ratio:.3f}x")
        if ratio < FROZEN_SERVING_RATIO_FLOOR:
            raise SystemExit(
                f"frozen serving rate is {ratio:.3f}x the live engine's "
                f"(floor {FROZEN_SERVING_RATIO_FLOOR:.1f}x) — the mmap "
                f"serving path grew overhead")
    if not seen:
        raise SystemExit(
            "bench_fleet_throughput emitted no frozen_serving row")


def load_baseline(path: pathlib.Path) -> list:
    if not path.exists():
        return []
    try:
        records = json.loads(path.read_text())
    except json.JSONDecodeError:
        return []
    return records if isinstance(records, list) else []


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree containing bench/")
    parser.add_argument("--out-dir", default=".",
                        help="where the BENCH_*.json files go")
    parser.add_argument("--quick", action="store_true",
                        help="pass --quick to quick-aware benches (CI trim)")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_fleet.json to gate the fleet "
                             "path speedup against (default: the one in "
                             "--out-dir)")
    args = parser.parse_args()

    bench_dir = pathlib.Path(args.build_dir) / "bench"
    out_dir = pathlib.Path(args.out_dir)

    # Validate everything up front: no output file is written until every
    # bench binary exists, ran successfully, and produced records.
    missing = [name for name in BENCHES
               if not (bench_dir / name).exists()]
    if missing:
        raise SystemExit("bench binaries not found (build them first): " +
                         ", ".join(str(bench_dir / name) for name in missing))

    collected = {}
    for name, out_name in BENCHES.items():
        records = run_bench(bench_dir / name, args.quick)
        if not records:
            raise SystemExit(f"{name} produced no JSON lines")
        # Benches sharing an output file merge into one array, in
        # BENCHES order — never clobber an earlier bench's records.
        collected.setdefault(out_name, []).extend(records)

    fleet_records = collected["BENCH_fleet.json"]
    check_obs_overhead(fleet_records)
    check_shard_scaling(fleet_records)
    check_simd_sweep(fleet_records)
    check_frozen_serving(fleet_records)
    check_churn_overhead(fleet_records)
    check_quality_overhead(fleet_records)
    baseline_path = (pathlib.Path(args.baseline) if args.baseline
                     else out_dir / "BENCH_fleet.json")
    check_path_regression(fleet_records, load_baseline(baseline_path))

    out_dir.mkdir(parents=True, exist_ok=True)
    for out_name, records in collected.items():
        out_path = out_dir / out_name
        out_path.write_text(json.dumps(records, indent=2) + "\n")
        print(f"wrote {out_path} ({len(records)} records)")


if __name__ == "__main__":
    main()
